"""Behavioural tests for the bounded composition probing protocol.

Uses the hand-built :class:`tests.worlds.MicroWorld` (full-mesh line
metric) so expected winners and QoS values can be computed by hand.
"""

import math

import pytest

from repro.core.baselines import OptimalComposer
from repro.core.bcp import BCP, BCPConfig, derive_next_functions
from repro.core.function_graph import FunctionGraph
from repro.core.quota import ReplicationProportionalQuota, UniformQuota

from worlds import MicroWorld


def linear_ab():
    return FunctionGraph.linear(["fa", "fb"])


class TestDeriveNextFunctions:
    def test_initial_hop_sources(self):
        fg = FunctionGraph.linear(["a", "b"])
        cands = derive_next_functions(fg, None, frozenset())
        assert [(c[0], c[3]) for c in cands] == [("a", True)]

    def test_dependency_successors(self):
        fg = FunctionGraph.from_edges(
            "abcd", [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
        )
        cands = derive_next_functions(fg, "a", frozenset())
        assert sorted(c[0] for c in cands) == ["b", "c"]
        assert all(c[3] for c in cands)

    def test_commutation_alternative_added(self):
        fg = FunctionGraph.linear(["a", "b", "c"], [("b", "c")])
        cands = derive_next_functions(fg, "a", frozenset())
        names = [c[0] for c in cands]
        assert names == ["b", "c"]
        alt = cands[1]
        assert not alt[3]  # not a dependency
        assert ("c", "b") in alt[1].edges  # pattern swapped
        assert frozenset({"b", "c"}) in alt[2]

    def test_commutation_disabled(self):
        fg = FunctionGraph.linear(["a", "b", "c"], [("b", "c")])
        cands = derive_next_functions(fg, "a", frozenset(), explore_commutations=False)
        assert [c[0] for c in cands] == ["b"]

    def test_applied_pair_not_reapplied(self):
        fg = FunctionGraph.linear(["a", "b", "c"], [("b", "c")])
        pair = frozenset({"b", "c"})
        swapped = fg.swap("b", "c")
        cands = derive_next_functions(swapped, "a", frozenset({pair}))
        assert [c[0] for c in cands] == ["c"]

    def test_sink_has_no_next(self):
        fg = FunctionGraph.linear(["a", "b"])
        assert derive_next_functions(fg, "b", frozenset()) == []


class TestLinearComposition:
    def test_selects_lowest_delay_component(self):
        world = MicroWorld(config=BCPConfig(budget=32, objective="delay"))
        fast = world.place("fa", peer=2, delay=0.001)
        slow = world.place("fa", peer=3, delay=0.300)
        req = world.request(FunctionGraph.linear(["fa"]), source=0, dest=1)
        result = world.bcp.compose(req, confirm=False)
        assert result.success
        assert result.best.component("fa").component_id == fast.component_id

    def test_end_to_end_qos_hand_computed(self):
        world = MicroWorld(config=BCPConfig(budget=8))
        world.place("fa", peer=4, delay=0.020)
        req = world.request(FunctionGraph.linear(["fa"]), source=0, dest=1)
        result = world.bcp.compose(req, confirm=False)
        # 0 -> 4 (0.04) + service 0.02 + 4 -> 1 (0.03)
        assert result.best_qos.get("delay") == pytest.approx(0.04 + 0.02 + 0.03)

    def test_two_function_chain(self):
        world = MicroWorld(config=BCPConfig(budget=32))
        world.place("fa", peer=2)
        world.place("fa", peer=5)
        world.place("fb", peer=3)
        world.place("fb", peer=6)
        req = world.request(linear_ab(), source=0, dest=7)
        result = world.bcp.compose(req, confirm=False)
        assert result.success
        assert set(result.best.assignment) == {"fa", "fb"}
        # four combinations explored with enough budget
        assert result.candidates_examined == 4

    def test_failure_when_function_missing(self):
        world = MicroWorld()
        world.place("fa", peer=2)
        req = world.request(linear_ab())
        result = world.bcp.compose(req)
        assert not result.success
        assert result.failure_reason is not None

    def test_invalid_budget_rejected(self):
        world = MicroWorld()
        world.place("fa", peer=2)
        req = world.request(FunctionGraph.linear(["fa"]))
        with pytest.raises(ValueError):
            world.bcp.compose(req, budget=0)


class TestBudget:
    def setup_world(self, budget):
        world = MicroWorld(
            config=BCPConfig(
                budget=budget,
                quota_policy=ReplicationProportionalQuota(fraction=1.0, cap=10**6),
            )
        )
        for fn in ("fa", "fb"):
            for peer in (2, 3, 4, 5):
                world.place(fn, peer=peer)
        return world

    def test_candidates_bounded_by_budget(self):
        for budget in (1, 2, 4, 8):
            world = self.setup_world(budget)
            req = world.request(linear_ab(), source=0, dest=7)
            result = world.bcp.compose(req, confirm=False)
            assert result.candidates_examined <= budget

    def test_budget_one_single_path(self):
        world = self.setup_world(1)
        req = world.request(linear_ab(), source=0, dest=7)
        result = world.bcp.compose(req, confirm=False)
        assert result.success
        assert result.candidates_examined == 1

    def test_large_budget_explores_everything(self):
        world = self.setup_world(64)
        req = world.request(linear_ab(), source=0, dest=7)
        result = world.bcp.compose(req, confirm=False)
        assert result.candidates_examined == 16  # 4 x 4

    def test_more_budget_never_worse(self):
        delays = []
        for budget in (1, 4, 16, 64):
            world = self.setup_world(budget)
            world.bcp.config = BCPConfig(
                budget=budget,
                quota_policy=ReplicationProportionalQuota(fraction=1.0, cap=10**6),
                objective="delay",
            )
            req = world.request(linear_ab(), source=0, dest=7)
            result = world.bcp.compose(req, confirm=False)
            delays.append(result.best_qos.get("delay"))
        assert delays == sorted(delays, reverse=True) or len(set(delays)) < len(delays)


class TestQoSPruning:
    def test_unreachable_bound_fails(self):
        world = MicroWorld()
        world.place("fa", peer=7, delay=0.5)
        req = world.request(
            FunctionGraph.linear(["fa"]), source=0, dest=1, delay_bound=0.010
        )
        result = world.bcp.compose(req)
        assert not result.success
        assert "no probe" in result.failure_reason

    def test_pruning_drops_bad_paths_keeps_good(self):
        world = MicroWorld(config=BCPConfig(budget=16))
        world.place("fa", peer=2, delay=0.001)  # near: qualifies
        world.place("fa", peer=7, delay=0.400)  # far + slow: pruned
        req = world.request(
            FunctionGraph.linear(["fa"]), source=0, dest=1, delay_bound=0.100
        )
        result = world.bcp.compose(req, confirm=False)
        assert result.success
        assert result.best.component("fa").peer == 2
        assert len(result.qualified) == 1

    def test_pruning_disabled_keeps_violators_until_selection(self):
        world = MicroWorld(config=BCPConfig(budget=16, qos_pruning=False))
        world.place("fa", peer=7, delay=0.400)
        req = world.request(
            FunctionGraph.linear(["fa"]), source=0, dest=1, delay_bound=0.010
        )
        result = world.bcp.compose(req)
        # the probe reaches the destination but fails qualification there
        assert not result.success
        assert result.candidates_examined == 1
        assert "no qualified" in result.failure_reason


class TestResourceChecks:
    def test_oversized_component_not_admitted(self):
        world = MicroWorld(cpu=50.0)
        world.place("fa", peer=2, cpu=60.0)  # cannot fit anywhere
        req = world.request(FunctionGraph.linear(["fa"]))
        result = world.bcp.compose(req)
        assert not result.success

    def test_feasible_alternative_wins(self):
        world = MicroWorld(cpu=50.0)
        world.place("fa", peer=2, cpu=60.0)
        ok = world.place("fa", peer=5, cpu=10.0)
        req = world.request(FunctionGraph.linear(["fa"]))
        result = world.bcp.compose(req, confirm=False)
        assert result.success
        assert result.best.component("fa").component_id == ok.component_id

    def test_bandwidth_infeasible_stream_fails(self):
        world = MicroWorld()  # links carry 10 Mbps
        world.place("fa", peer=2)
        req = world.request(FunctionGraph.linear(["fa"]), bandwidth=50.0)
        result = world.bcp.compose(req)
        assert not result.success

    def test_confirm_holds_resources(self):
        world = MicroWorld()
        spec = world.place("fa", peer=2, cpu=30.0)
        req = world.request(FunctionGraph.linear(["fa"]))
        result = world.bcp.compose(req, confirm=True)
        assert result.success
        assert world.pool.available(2).get("cpu") == pytest.approx(70.0)
        assert result.session_tokens
        for token in result.session_tokens:
            world.pool.release(token)
        assert world.pool.available(2).get("cpu") == pytest.approx(100.0)

    def test_no_confirm_releases_everything(self):
        world = MicroWorld()
        world.place("fa", peer=2, cpu=30.0)
        req = world.request(FunctionGraph.linear(["fa"]))
        result = world.bcp.compose(req, confirm=False)
        assert result.success
        assert world.pool.available(2).get("cpu") == pytest.approx(100.0)
        assert world.pool.active_tokens() == []

    def test_failed_compose_leaves_no_tokens(self):
        world = MicroWorld()
        world.place("fa", peer=2)
        req = world.request(FunctionGraph.linear(["fa", "missing"]))
        result = world.bcp.compose(req)
        assert not result.success
        assert world.pool.active_tokens() == []

    def test_losing_candidates_released(self):
        world = MicroWorld(config=BCPConfig(budget=16))
        world.place("fa", peer=2, cpu=20.0)
        world.place("fa", peer=3, cpu=20.0)
        req = world.request(FunctionGraph.linear(["fa"]))
        result = world.bcp.compose(req, confirm=True)
        assert result.success
        winner_peer = result.best.component("fa").peer
        loser_peer = 3 if winner_peer == 2 else 2
        assert world.pool.available(loser_peer).get("cpu") == pytest.approx(100.0)
        assert world.pool.available(winner_peer).get("cpu") == pytest.approx(80.0)


class TestLiveness:
    def test_dead_peer_components_skipped(self):
        world = MicroWorld(config=BCPConfig(budget=16))
        dead = world.place("fa", peer=2, delay=0.0001)
        alive = world.place("fa", peer=5, delay=0.1)
        world.kill(2)
        req = world.request(FunctionGraph.linear(["fa"]))
        result = world.bcp.compose(req, confirm=False)
        assert result.success
        assert result.best.component("fa").component_id == alive.component_id


class TestQualityCompatibility:
    def test_incompatible_formats_filtered(self):
        world = MicroWorld(config=BCPConfig(budget=16))
        world.place("fa", peer=2, output_formats=("yuv",))
        bad = world.place("fb", peer=3, input_formats=("h264",))
        good = world.place("fb", peer=4, input_formats=("yuv",))
        req = world.request(linear_ab(), source=0, dest=7)
        result = world.bcp.compose(req, confirm=False)
        assert result.success
        assert result.best.component("fb").component_id == good.component_id

    def test_all_incompatible_fails(self):
        world = MicroWorld()
        world.place("fa", peer=2, output_formats=("yuv",))
        world.place("fb", peer=3, input_formats=("h264",))
        req = world.request(linear_ab())
        assert not world.bcp.compose(req).success


class TestDagComposition:
    def diamond(self):
        return FunctionGraph.from_edges(
            ["fa", "fb", "fc", "fd"],
            [("fa", "fb"), ("fa", "fc"), ("fb", "fd"), ("fc", "fd")],
        )

    def test_diamond_composes_complete_graph(self):
        world = MicroWorld(config=BCPConfig(budget=32))
        for fn, peers in (("fa", (2,)), ("fb", (3, 4)), ("fc", (5,)), ("fd", (6,))):
            for p in peers:
                world.place(fn, peer=p)
        req = world.request(self.diamond(), source=0, dest=7)
        result = world.bcp.compose(req, confirm=False)
        assert result.success
        assert set(result.best.assignment) == {"fa", "fb", "fc", "fd"}

    def test_merged_graphs_agree_on_shared_functions(self):
        world = MicroWorld(config=BCPConfig(budget=64))
        world.place("fa", peer=2)
        world.place("fa", peer=3)
        world.place("fb", peer=4)
        world.place("fc", peer=5)
        world.place("fd", peer=6)
        req = world.request(self.diamond(), source=0, dest=7)
        result = world.bcp.compose(req, confirm=False)
        assert result.success
        # every qualified merged graph must assign fa and fd consistently
        for cand in result.qualified:
            assert set(cand.graph.assignment) == {"fa", "fb", "fc", "fd"}

    def test_missing_branch_function_fails(self):
        world = MicroWorld(config=BCPConfig(budget=32))
        for fn, p in (("fa", 2), ("fb", 3), ("fd", 6)):
            world.place(fn, peer=p)
        # fc missing: branch fa->fc->fd can never be probed
        req = world.request(self.diamond(), source=0, dest=7)
        assert not world.bcp.compose(req).success


class TestCommutationExploration:
    def test_swapped_order_can_win(self):
        # fb only exists far from the source, fc exists near it: the
        # swapped order fc -> fb shortens the walk
        world = MicroWorld(
            config=BCPConfig(budget=32, objective="delay"), unit_delay=0.010
        )
        fg = FunctionGraph.linear(["fa", "fb", "fc"], [("fb", "fc")])
        world.place("fa", peer=1)
        world.place("fb", peer=6)
        world.place("fc", peer=2)
        req = world.request(fg, source=0, dest=7)
        result = world.bcp.compose(req, confirm=False)
        assert result.success
        orders = {
            tuple(c.graph.pattern.topological_order()) for c in result.qualified
        }
        assert ("fa", "fc", "fb") in orders  # swapped pattern explored
        assert result.best.pattern.topological_order() == ["fa", "fc", "fb"]

    def test_exploration_off_keeps_original_order(self):
        world = MicroWorld(
            config=BCPConfig(budget=32, explore_commutations=False, objective="delay")
        )
        fg = FunctionGraph.linear(["fa", "fb", "fc"], [("fb", "fc")])
        world.place("fa", peer=1)
        world.place("fb", peer=6)
        world.place("fc", peer=2)
        req = world.request(fg, source=0, dest=7)
        result = world.bcp.compose(req, confirm=False)
        assert result.success
        assert result.best.pattern.topological_order() == ["fa", "fb", "fc"]


class TestCollectTimeout:
    def test_late_probes_discarded(self):
        world = MicroWorld(config=BCPConfig(budget=8, collect_timeout=1e-6))
        world.place("fa", peer=2)
        req = world.request(FunctionGraph.linear(["fa"]))
        result = world.bcp.compose(req)
        assert not result.success  # nothing arrives within the window

    def test_generous_timeout_succeeds(self):
        world = MicroWorld(config=BCPConfig(budget=8, collect_timeout=60.0))
        world.place("fa", peer=2)
        req = world.request(FunctionGraph.linear(["fa"]))
        assert world.bcp.compose(req, confirm=False).success


class TestAgainstOptimal:
    def test_full_budget_matches_exhaustive_search(self):
        world = MicroWorld(
            config=BCPConfig(
                budget=256,
                quota_policy=ReplicationProportionalQuota(fraction=1.0, cap=10**6),
                objective="delay",
            )
        )
        import numpy as np
        rng = np.random.default_rng(9)
        for fn in ("fa", "fb"):
            for peer in (2, 3, 4, 5):
                world.place(fn, peer=peer, delay=float(rng.uniform(0.001, 0.2)))
        req = world.request(linear_ab(), source=0, dest=7)
        bcp_result = world.bcp.compose(req, confirm=False)
        opt = OptimalComposer(
            world.overlay, world.pool, world.registry, objective="delay"
        )
        opt_result = opt.compose(req, confirm=False)
        assert bcp_result.success and opt_result.success
        assert bcp_result.best_qos.get("delay") == pytest.approx(
            opt_result.best_qos.get("delay")
        )


class TestResultBookkeeping:
    def test_phases_recorded(self):
        world = MicroWorld()
        world.place("fa", peer=2)
        req = world.request(FunctionGraph.linear(["fa"]))
        result = world.bcp.compose(req, confirm=False)
        assert {"discovery", "composition", "setup_ack"} <= set(result.phases)
        assert result.setup_time > 0

    def test_probes_counted(self):
        world = MicroWorld(config=BCPConfig(budget=16))
        world.place("fa", peer=2)
        world.place("fa", peer=3)
        req = world.request(FunctionGraph.linear(["fa"]))
        result = world.bcp.compose(req, confirm=False)
        # 2 probes to components + 2 final hops
        assert result.probes_sent == 4

    def test_backup_candidates_exclude_best(self):
        world = MicroWorld(config=BCPConfig(budget=16))
        for p in (2, 3, 4):
            world.place("fa", peer=p)
        req = world.request(FunctionGraph.linear(["fa"]))
        result = world.bcp.compose(req, confirm=False)
        best_sig = result.best.signature()
        assert all(c.graph.signature() != best_sig for c in result.backup_candidates)
        assert len(result.backup_candidates) == len(result.qualified) - 1

    def test_ledger_categories(self):
        world = MicroWorld()
        world.place("fa", peer=2)
        req = world.request(FunctionGraph.linear(["fa"]))
        world.bcp.compose(req, confirm=False)
        assert world.bcp.ledger.count["bcp_probe"] > 0
        assert world.bcp.ledger.count["bcp_ack"] > 0


class TestCommutationInsideDagBranch:
    """The subtlest merge case: a commutation pair inside one branch of a
    DAG.  Probes that swapped the pair carry a different effective
    pattern, while probes on the *other* branch are pattern-agnostic —
    the destination must merge them under the swapped pattern too."""

    def graph(self):
        return FunctionGraph.from_edges(
            ["fa", "fb1", "fb2", "fc", "fd"],
            [("fa", "fb1"), ("fb1", "fb2"), ("fb2", "fd"), ("fa", "fc"), ("fc", "fd")],
            commutations=[("fb1", "fb2")],
        )

    def test_swapped_branch_merges_with_sibling(self):
        world = MicroWorld(
            n_peers=12, config=BCPConfig(budget=64, objective="delay")
        )
        world.place("fa", peer=2)
        # fb1 far, fb2 near: the swapped order fb2->fb1 shortens the walk
        world.place("fb1", peer=9)
        world.place("fb2", peer=3)
        world.place("fc", peer=5)
        world.place("fd", peer=10)
        req = world.request(self.graph(), source=0, dest=11)
        result = world.bcp.compose(req, confirm=False)
        assert result.success
        orders = {
            tuple(c.graph.pattern.topological_order()) for c in result.qualified
        }
        # both the original and the swapped pattern produced complete,
        # merged service graphs (fc-branch probes joined each variant)
        assert any(o.index("fb2") < o.index("fb1") for o in orders)
        assert any(o.index("fb1") < o.index("fb2") for o in orders)
        for cand in result.qualified:
            assert set(cand.graph.assignment) == {"fa", "fb1", "fb2", "fc", "fd"}

    def test_max_patterns_cap_respected(self):
        world = MicroWorld(n_peers=12, config=BCPConfig(budget=64, max_patterns=1))
        for fn, p in (("fa", 2), ("fb1", 3), ("fb2", 4), ("fc", 5), ("fd", 6)):
            world.place(fn, peer=p)
        req = world.request(self.graph(), source=0, dest=11)
        result = world.bcp.compose(req, confirm=False)
        assert result.success
        orders = {tuple(c.graph.pattern.topological_order()) for c in result.qualified}
        assert len(orders) == 1  # only the original pattern merged

    def test_max_candidates_caps_merge(self):
        world = MicroWorld(
            n_peers=12,
            config=BCPConfig(
                budget=128,
                max_candidates=3,
                quota_policy=ReplicationProportionalQuota(fraction=1.0, cap=10**6),
            ),
        )
        for fn in ("fa", "fb1", "fb2", "fc", "fd"):
            for p in (2, 3, 4):
                world.place(fn, peer=p)
        req = world.request(self.graph(), source=0, dest=11)
        result = world.bcp.compose(req, confirm=False)
        assert result.success
        assert len(result.qualified) <= 3
