"""Tests for the decentralized trust extension (§8 future work)."""

import numpy as np
import pytest

from repro.core.bcp import BCPConfig, NextHopWeights
from repro.core.function_graph import FunctionGraph
from repro.trust.malice import MaliciousPopulation
from repro.trust.reputation import BetaReputation, TrustManager

from worlds import MicroWorld


class TestBetaReputation:
    def test_no_evidence_neutral(self):
        rep = BetaReputation()
        assert rep.expectation == 0.5
        assert rep.confidence == 0.0

    def test_positive_evidence_raises_trust(self):
        rep = BetaReputation()
        for _ in range(8):
            rep.record(True)
        assert rep.expectation > 0.85

    def test_negative_evidence_lowers_trust(self):
        rep = BetaReputation()
        for _ in range(8):
            rep.record(False)
        assert rep.expectation < 0.15

    def test_confidence_grows_with_samples(self):
        rep = BetaReputation()
        confs = []
        for _ in range(5):
            rep.record(True)
            confs.append(rep.confidence)
        assert confs == sorted(confs)
        assert all(0 <= c < 1 for c in confs)

    def test_decay_reduces_evidence(self):
        rep = BetaReputation(alpha=10.0, beta=0.0)
        rep.decayed(0.5)
        assert rep.alpha == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            BetaReputation().record(True, weight=-1.0)
        with pytest.raises(ValueError):
            BetaReputation().decayed(1.5)


class TestTrustManager:
    def test_stranger_is_neutral(self):
        tm = TrustManager()
        assert tm.trust(1, 2) == 0.5

    def test_self_trust_full(self):
        assert TrustManager().trust(3, 3) == 1.0

    def test_direct_experience_dominates(self):
        tm = TrustManager()
        for _ in range(10):
            tm.record_interaction(1, 2, positive=False)
        assert tm.trust(1, 2) < 0.2

    def test_recommendations_reach_strangers(self):
        tm = TrustManager()
        # evaluator 1 trusts peer 5 (good history); peer 5 knows 9 is bad
        for _ in range(10):
            tm.record_interaction(1, 5, positive=True)
            tm.record_interaction(5, 9, positive=False)
        # 1 has never met 9, but 5's recommendation should lower the score
        assert tm.trust(1, 9) < 0.4

    def test_recommendation_weighted_by_recommender_trust(self):
        tm = TrustManager()
        # the evaluator distrusts the liar, trusts the honest peer
        for _ in range(10):
            tm.record_interaction(1, 5, positive=True)   # honest
            tm.record_interaction(1, 6, positive=False)  # liar
            tm.record_interaction(5, 9, positive=False)  # honest: 9 is bad
            tm.record_interaction(6, 9, positive=True)   # liar: 9 is great
        assert tm.trust(1, 9) < 0.5  # honest recommendation wins

    def test_self_rating_ignored(self):
        tm = TrustManager()
        tm.record_interaction(4, 4, positive=True)
        assert tm.interactions(4) == []

    def test_session_feedback_rates_all(self):
        tm = TrustManager()
        tm.session_feedback(1, [2, 3, 4], positive=True)
        assert tm.interactions(1) == [2, 3, 4]

    def test_queries_charged(self):
        tm = TrustManager()
        for _ in range(5):
            tm.record_interaction(1, 5, positive=True)
            tm.record_interaction(5, 9, positive=False)
        tm.trust(1, 9)
        assert tm.ledger.count["trust_query"] >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            TrustManager(max_recommenders=-1)
        with pytest.raises(ValueError):
            TrustManager(decay=0.0)


class TestMaliciousPopulation:
    def test_random_fraction(self):
        pop = MaliciousPopulation.random(range(100), 0.3, rng=np.random.default_rng(0))
        assert len(pop.malicious) == 30

    def test_protected_never_malicious(self):
        pop = MaliciousPopulation.random(
            range(20), 1.0, rng=np.random.default_rng(0), protected={0, 1}
        )
        assert 0 not in pop.malicious and 1 not in pop.malicious

    def test_clean_peers_never_sabotage(self):
        pop = MaliciousPopulation(set(), 1.0)
        rng = np.random.default_rng(0)
        assert all(pop.session_outcome([1, 2, 3], rng) for _ in range(20))

    def test_certain_saboteur_always_fails(self):
        pop = MaliciousPopulation({7}, 1.0)
        rng = np.random.default_rng(0)
        assert not pop.session_outcome([1, 7, 3], rng)

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            MaliciousPopulation.random(range(10), 1.5)
        with pytest.raises(ValueError):
            MaliciousPopulation({1}, sabotage_probability=2.0)


class TestBcpIntegration:
    def test_trust_weight_steers_selection(self):
        world = MicroWorld(
            config=BCPConfig(
                budget=4,
                nexthop_weights=NextHopWeights(
                    delay=0.1, bandwidth=0.1, failure=0.1, trust=0.7
                ),
            )
        )
        trusted = world.place("fa", peer=5, delay=0.05)
        shady = world.place("fa", peer=2, delay=0.01)  # closer AND faster
        world.place("fa", peer=3, delay=0.01)
        tm = TrustManager()
        for _ in range(10):
            tm.record_interaction(0, 2, positive=False)
            tm.record_interaction(0, 3, positive=False)
            tm.record_interaction(0, 5, positive=True)
        world.bcp.trust = tm
        # quota forces pruning to 2 of 3 candidates: the distrusted peers
        # should be pruned despite their better delay
        from repro.core.quota import UniformQuota

        world.bcp.config = BCPConfig(
            budget=1,
            quota_policy=UniformQuota(1),
            nexthop_weights=NextHopWeights(delay=0.1, bandwidth=0.1, failure=0.1, trust=0.7),
        )
        req = world.request(FunctionGraph.linear(["fa"]), source=0, dest=7)
        result = world.bcp.compose(req, confirm=False)
        assert result.success
        assert result.best.component("fa").component_id == trusted.component_id

    def test_without_trust_manager_weight_ignored(self):
        world = MicroWorld(
            config=BCPConfig(
                nexthop_weights=NextHopWeights(delay=0.5, bandwidth=0.2, failure=0.2, trust=0.1)
            )
        )
        world.place("fa", peer=2)
        req = world.request(FunctionGraph.linear(["fa"]))
        assert world.bcp.compose(req, confirm=False).success

    def test_negative_trust_weight_rejected(self):
        with pytest.raises(ValueError):
            NextHopWeights(trust=-0.1)


class TestTrustExperiment:
    def test_learning_improves_clean_rate(self):
        from repro.experiments import TrustConfig, run_trust_extension

        cfg = TrustConfig(
            n_ip=150, n_peers=40, n_functions=8,
            sessions=120, batch=30, budget=16, seed=0,
        )
        result = run_trust_extension(cfg)
        baseline, aware = result.series
        # by the last batch the trust-aware scheme should be no worse
        assert aware.y[-1] >= baseline.y[-1] - 0.05
        # and should have improved over its own first batch
        assert aware.y[-1] >= aware.y[0] - 0.05
