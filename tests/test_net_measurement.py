"""The topology measurement plane: estimators, the measured view, and
the live loop from degradation to rerouting and from death to recovery.

Unit layers first (:class:`LinkEstimator` EWMA/baseline/decay math, the
:class:`MeasuredOverlayView` delegate-until-material contract), then the
integrated behaviours the plane exists for:

* passive-only operation (``probe_interval=0``) still measures every
  RPC round-trip for free;
* active probes are real frames charged to the ``net_measure`` ledger
  category;
* settled estimates over an *unchanged* topology never perturb
  selections (the parity guarantee, asserted against the sync engine);
* degrading a link's wire latency mid-run converges the RTT estimate
  and routes subsequent traffic around the link;
* the dead-path lifecycle: killing a peer marks its paths down and
  drops it from candidate selection, reviving it brings both back via
  a recovery probe;
* exhausted RPC retries leave structured, inspectable records without
  polluting the crash-bug channel (``LiveCluster.errors()``).
"""

import asyncio
import dataclasses
import time

import pytest

from repro.core.bcp import BCPConfig, NextHopWeights
from repro.net import ClusterConfig, LiveCluster, MeasurementConfig
from repro.net.measurement import LinkEstimator, MeasuredOverlayView
from repro.net.rpc import RetryPolicy


# ----------------------------------------------------------------------
# LinkEstimator
# ----------------------------------------------------------------------


def _cfg(**overrides) -> MeasurementConfig:
    return MeasurementConfig(**overrides)


def test_estimator_seeds_and_locks_baseline():
    est = LinkEstimator(_cfg(warmup=3))
    est.add_sample(0.010, now=0.0)
    assert est.srtt == pytest.approx(0.010)
    assert est.rttvar == pytest.approx(0.005)
    assert est.baseline is None  # not warm yet
    est.add_sample(0.010, now=0.1)
    assert est.baseline is None
    est.add_sample(0.010, now=0.2)
    assert est.baseline == pytest.approx(0.010)
    # steady input: ratio pins at 1.0, estimate == srtt
    assert est.ratio(now=0.3) == pytest.approx(1.0)
    assert est.estimate(now=0.3) == pytest.approx(0.010)


def test_estimator_ewma_tracks_inflation():
    cfg = _cfg(alpha=0.125, beta=0.25, warmup=3)
    est = LinkEstimator(cfg)
    for i in range(3):
        est.add_sample(0.010, now=i * 0.1)
    srtt = est.srtt
    est.add_sample(0.060, now=0.4)
    # one RFC 6298 step: srtt += alpha * (rtt - srtt)
    assert est.srtt == pytest.approx(srtt + 0.125 * (0.060 - srtt))
    for i in range(60):
        est.add_sample(0.060, now=0.5 + i * 0.1)
    assert est.srtt == pytest.approx(0.060, rel=0.05)
    assert est.ratio(now=7.0) == pytest.approx(6.0, rel=0.1)
    assert est.baseline == pytest.approx(0.010)  # baseline never re-locks


def test_estimator_staleness_decays_toward_baseline():
    cfg = _cfg(warmup=3, stale_after=5.0, decay_halflife=5.0)
    est = LinkEstimator(cfg)
    for i in range(3):
        est.add_sample(0.010, now=float(i))
    for i in range(40):
        est.add_sample(0.050, now=3.0 + i * 0.1)
    last = est.last_at
    srtt = est.srtt
    # fresh: no decay
    assert est.estimate(last + cfg.stale_after) == pytest.approx(srtt)
    # one half-life past staleness: deviation from baseline halves
    mid = est.estimate(last + cfg.stale_after + cfg.decay_halflife)
    assert mid == pytest.approx(0.010 + (srtt - 0.010) * 0.5)
    # far future: estimate is back at baseline, ratio back at ~1
    far = est.estimate(last + cfg.stale_after + 20 * cfg.decay_halflife)
    assert far == pytest.approx(0.010, rel=0.01)
    assert est.ratio(last + cfg.stale_after + 20 * cfg.decay_halflife) == (
        pytest.approx(1.0, rel=0.01)
    )


def test_estimator_ignores_negative_samples():
    est = LinkEstimator(_cfg())
    est.add_sample(-1.0, now=0.0)
    assert est.srtt is None
    assert est.samples == 0


def test_config_validation():
    with pytest.raises(ValueError):
        MeasurementConfig(probe_interval=-1)
    with pytest.raises(ValueError):
        MeasurementConfig(alpha=0.0)
    with pytest.raises(ValueError):
        MeasurementConfig(warmup=0)
    with pytest.raises(ValueError):
        MeasurementConfig(down_after=0)
    with pytest.raises(ValueError):
        MeasurementConfig(material_ratio=1.0)


# ----------------------------------------------------------------------
# MeasuredOverlayView
# ----------------------------------------------------------------------


def _overlay(n_peers=6, seed=7):
    return LiveCluster(
        ClusterConfig(n_peers=n_peers, seed=seed)
    ).scenario.overlay


def test_view_delegates_verbatim_when_clean():
    base = _overlay()
    view = MeasuredOverlayView(base)
    # the *same* router object — memoized paths are shared, selections
    # cannot diverge even in principle
    assert view.router is base.router
    assert view.latency(0, 3) == base.latency(0, 3)
    assert view.path_loss_add(0, 3) == base.path_loss_add(0, 3)
    assert view.n_peers == base.n_peers
    assert view.rebuilds == 0


def test_view_scales_link_and_preserves_link_order():
    base = _overlay()
    view = MeasuredOverlayView(base)
    link = base.router.link_order[0]
    declared = base.router.link_delay(*link)
    assert view.set_link_scale(link, 4.0)
    assert view.router is not base.router
    assert view.rebuilds == 1
    assert view.router.link_delay(*link) == pytest.approx(declared * 4.0)
    # same graph object, same canonical link order: pool capacity/usage
    # arrays indexed by link_order stay valid
    assert view.router.graph is base.router.graph
    assert view.router.link_order == base.router.link_order
    # idempotent installs don't thrash
    assert not view.set_link_scale(link, 4.0)
    assert view.rebuilds == 1
    # clearing the only delta returns to verbatim delegation
    assert view.set_link_scale(link, None)
    assert view.router is base.router


def test_view_down_peer_prices_links_unreachable():
    base = _overlay()
    view = MeasuredOverlayView(base)
    victim = 3
    assert view.set_peer_down(victim)
    assert not view.router.reachable(0, victim)
    assert view.latency(0, victim) == float("inf")
    assert view.path_loss_add(0, victim) == float("inf")
    # other pairs still route (mesh topologies keep alternatives)
    others = [p for p in base.peers() if p != victim]
    assert view.router.reachable(others[0], others[-1])
    assert view.clear_peer_down(victim)
    assert view.router is base.router
    assert view.latency(0, victim) == base.latency(0, victim)


def test_view_mutations_fire_cache_listeners():
    base = _overlay()
    view = MeasuredOverlayView(base)
    fired = []
    view.add_cache_listener(lambda: fired.append(1))
    link = base.router.link_order[0]
    view.set_link_scale(link, 3.0)
    assert len(fired) == 1
    view.set_peer_down(4)
    assert len(fired) == 2
    view.reset()
    assert len(fired) == 3
    assert view.link_scales == {}
    assert view.down_peers == set()


# ----------------------------------------------------------------------
# live cluster integration
# ----------------------------------------------------------------------


def _live_config(**overrides):
    base = dict(
        n_peers=6,
        n_functions=6,
        transport="loopback",
        seed=11,
        distributed=True,
        bcp_config=BCPConfig(
            budget=32,
            nexthop_weights=NextHopWeights(delay=0.6, bandwidth=0.0, failure=0.4),
        ),
        capacity_scale=10.0,
    )
    base.update(overrides)
    return ClusterConfig(**base)


async def _poll(predicate, timeout=15.0, tick=0.02):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        await asyncio.sleep(tick)
    return predicate()


def test_passive_only_mode_measures_rpc_roundtrips():
    async def scenario():
        cluster = LiveCluster(
            _live_config(measurement=MeasurementConfig(probe_interval=0.0))
        )
        async with cluster:
            for r in cluster.scenario.requests.batch(2):
                await cluster.compose(r, confirm=False, timeout=60)
            stats = cluster.measurement_stats()
            errors = cluster.errors()
        return stats, errors

    stats, errors = asyncio.run(scenario())
    assert errors == []
    assert stats["enabled"]
    assert stats["probes_sent"] == 0
    assert stats["samples_active"] == 0
    assert stats["samples_passive"] > 0


def test_active_probes_are_charged_to_net_measure():
    async def scenario():
        cluster = LiveCluster(
            _live_config(
                measurement=MeasurementConfig(probe_interval=0.02, probe_budget=4)
            )
        )
        async with cluster:
            snap = cluster.ledger.snapshot()
            await asyncio.sleep(0.3)
            delta = cluster.ledger.delta_since(snap)
            stats = cluster.measurement_stats()
            errors = cluster.errors()
        return delta, stats, errors

    delta, stats, errors = asyncio.run(scenario())
    assert errors == []
    assert stats["probes_sent"] > 0
    assert stats["samples_active"] > 0
    probe_count = delta.get("net_measure", (0, 0))[0]
    assert probe_count > 0
    # probing is idle-cluster traffic: no protocol category gets charged
    assert delta.get("bcp_probe", (0, 0))[0] == 0


def test_settled_estimates_keep_selection_parity():
    """The acceptance gate: measurement on, estimates settled, topology
    unchanged -> selections bit-identical to the synchronous engine."""

    async def scenario():
        # min_delta is raised from its 2 ms default: on a loaded test
        # runner, event-loop scheduling alone can spike a loopback RTT
        # by milliseconds — a *material* change by real-deployment
        # standards, but noise here.  The parity claim under test is
        # "no material delta -> bit-identical", so the test pins the
        # materiality floor above runner noise to keep the
        # unchanged-topology precondition true.
        cluster = LiveCluster(
            _live_config(
                measurement=MeasurementConfig(probe_interval=0.02, min_delta=0.05)
            )
        )
        requests = cluster.scenario.requests.batch(3)
        expected = [
            cluster.scenario.net.bcp.compose(r, confirm=False) for r in requests
        ]
        async with cluster:
            # let every plane lock baselines (warmup=3 samples per link)
            await asyncio.sleep(0.4)
            live = []
            for r in requests:
                live.append(await cluster.compose(r, confirm=False, timeout=60))
            stats = cluster.measurement_stats()
            errors = cluster.errors()
        return expected, live, stats, errors

    expected, live, stats, errors = asyncio.run(scenario())
    assert errors == []
    assert stats["samples_active"] > 0, "estimates must actually have settled"
    # sub-min_delta jitter: no link ever repriced, no private router
    # ever built — the precondition for the bit-identical claim below
    assert stats["reprices"] == 0
    assert stats["router_rebuilds"] == 0
    assert any(e.success for e in expected), "fixture must compose something"
    for sync_r, live_r in zip(expected, live):
        assert live_r.success == sync_r.success
        if sync_r.success:
            assert live_r.best.signature() == sync_r.best.signature()
        assert live_r.probes_sent == sync_r.probes_sent


def test_degraded_link_converges_and_reroutes():
    """Inflate one link's emulated wire latency mid-run: the source's
    estimator must converge on the inflation and its measured view must
    route subsequent traffic around the link."""

    scale = 0.1  # modeled delay -> wall seconds (2x bench's emulation,
    # so the absolute RTT delta comfortably clears min_delta)
    factor = 6.0
    degraded = {}
    holder = {}

    def wire_delay(src, dst):
        overlay = holder.get("overlay")
        if overlay is None or src == dst:
            return 0.0
        base = overlay.latency(src, dst) * scale
        link = (src, dst) if src < dst else (dst, src)
        return base * degraded.get(link, 1.0)

    async def scenario():
        cluster = LiveCluster(
            _live_config(
                latency=wire_delay,
                # full fanout: the first hop toward dest must be in the
                # source's probe set whatever the declared-delay order is
                measurement=MeasurementConfig(
                    probe_interval=0.05, probe_fanout=8, probe_budget=8
                ),
            )
        )
        overlay = holder["overlay"] = cluster.scenario.overlay
        gen = cluster.scenario.requests
        source, dest = 2, 4
        static_path = overlay.router.path(source, dest)
        hot_link = tuple(sorted(static_path[:2]))
        neighbour = hot_link[0] if hot_link[1] == source else hot_link[1]

        async with cluster:
            plane = cluster.daemons[source].measurement
            view = plane.view
            # settle the baseline on healthy wires
            assert await _poll(
                lambda: (plane.estimator(neighbour) or LinkEstimator(plane.config))
                .baseline
                is not None
            ), "baseline must lock on healthy wires"
            r = await cluster.compose(gen.next_request(source=source, dest=dest), timeout=60)
            assert r.success

            degraded[hot_link] = factor

            def rerouted():
                path = view.router.path(source, dest)
                links = {tuple(sorted(p)) for p in zip(path, path[1:])}
                return hot_link not in links

            assert await _poll(rerouted), "measured view must route around the link"
            # rerouting fires the moment the materiality gate (1.5x) is
            # crossed; the EWMA keeps converging toward the true 6x as
            # probes continue on the degraded link.  The snapshot
            # evaluates with the plane's own clock (the cluster clock),
            # so staleness decay reads the true sample age.
            assert await _poll(
                lambda: plane.stats()["links"][neighbour]["ratio"] > 3.0
            ), "estimate must keep converging toward the real inflation"
            ratio = plane.stats()["links"][neighbour]["ratio"]
            # two attempts: a compose overlapping one more reprice can
            # legitimately miss its QoS bound mid-repricing
            after = [
                await cluster.compose(gen.next_request(source=source, dest=dest), timeout=60)
                for _ in range(2)
            ]
            stats = plane.stats()
            errors = cluster.errors()
        return ratio, after, stats, errors

    ratio, after, stats, errors = asyncio.run(scenario())
    assert errors == []
    # converged well past the materiality gate, toward the real 6x
    assert ratio > 3.0
    assert stats["reprices"] >= 1
    assert stats["router_rebuilds"] >= 1
    assert any(r.success for r in after), "composes must keep succeeding on the detour"


def test_dead_path_lifecycle_kill_then_revive():
    """Satellite: kill a peer mid-run -> neighbours mark the path down
    and routing avoids it; revive the peer -> a recovery probe marks the
    path back up and routes return."""

    async def scenario():
        fast = RetryPolicy(timeout=0.15, retries=1, backoff=0.02)
        cluster = LiveCluster(
            _live_config(
                probe_retry=fast,
                control_retry=fast,
                # full fanout so every daemon adjacent to the victim
                # actively probes it (3-nearest might exclude it)
                measurement=MeasurementConfig(
                    probe_interval=0.05,
                    probe_timeout=0.1,
                    down_after=2,
                    probe_fanout=8,
                    probe_budget=8,
                ),
            )
        )
        victim = 0
        async with cluster:
            gen = cluster.scenario.requests
            baseline = await cluster.compose(
                gen.next_request(source=1, dest=2), timeout=60
            )

            watchers = [
                d
                for p, d in cluster.daemons.items()
                if p != victim and victim in d.measurement.neighbours
            ]
            assert watchers, "victim must be in someone's probe fanout"

            cluster.kill_peer(victim)
            assert await _poll(
                lambda: any(d.measurement.is_down(victim) for d in watchers)
            ), "consecutive probe failures must mark the path down"
            downed = next(d for d in watchers if d.measurement.is_down(victim))
            # routing avoids the corpse: dropped from candidate liveness
            # and priced unreachable in the measured view
            assert not downed.bcp.alive(victim)
            assert victim in downed.measurement.view.down_peers
            assert not downed.measurement.view.router.reachable(
                downed.peer_id, victim
            )
            during = [
                await cluster.compose(gen.next_request(source=3, dest=4), timeout=60)
                for _ in range(2)
            ]

            await cluster.revive_peer(victim)
            assert await _poll(
                lambda: not any(d.measurement.is_down(victim) for d in watchers)
            ), "a recovery probe must mark the path back up"
            assert victim not in downed.measurement.view.down_peers
            assert downed.bcp.alive(victim)
            assert downed.measurement.view.router.reachable(
                downed.peer_id, victim
            )
            after = await cluster.compose(
                gen.next_request(source=1, dest=2), timeout=60
            )
            stats = cluster.measurement_stats()
            errors = cluster.errors()
        return baseline, during, after, stats, errors

    baseline, during, after, stats, errors = asyncio.run(scenario())
    assert errors == []
    assert baseline.success
    assert any(
        r.success for r in during
    ), "cluster must keep composing around the corpse"
    assert after.success, "routes must return after recovery"
    assert stats["down_events"] >= 1
    assert stats["up_events"] >= 1


def test_rpc_exhaustion_leaves_structured_records():
    """Satellite: retry exhaustion against a dead peer is recorded with
    peer id, method and attempt count — inspectable via
    ``rpc_failures()`` / ``errors(include_rpc=True)`` while the plain
    ``errors()`` crash-bug channel stays clean."""

    async def scenario():
        fast = RetryPolicy(timeout=0.15, retries=1, backoff=0.02)
        cluster = LiveCluster(
            _live_config(
                probe_retry=fast,
                control_retry=fast,
                measurement=MeasurementConfig(
                    probe_interval=0.05,
                    probe_timeout=0.1,
                    probe_fanout=8,
                    probe_budget=8,
                ),
            )
        )
        async with cluster:
            gen = cluster.scenario.requests
            cluster.kill_peer(0)
            assert await _poll(lambda: cluster.rpc_failures())
            for _ in range(2):
                await cluster.compose(gen.next_request(source=3, dest=4), timeout=60)
            failures = cluster.rpc_failures()
            clean = cluster.errors()
            verbose = cluster.errors(include_rpc=True)
        return failures, clean, verbose

    failures, clean, verbose = asyncio.run(scenario())
    assert clean == []  # crash-bug channel unaffected
    assert failures
    for f in failures:
        assert f.peer == 0
        assert f.method
        # probes never retry (1 attempt); control RPCs use retries=1
        # (2 attempts); once the path is marked down, later calls fail
        # fast without sending at all (0 attempts)
        assert f.attempts in (0, 1, 2)
        assert f.error
    assert any("rpc_exhausted" in line and "peer=0" in line for line in verbose)


def test_measurement_disabled_reproduces_pre_plane_behaviour():
    async def scenario():
        cluster = LiveCluster(
            _live_config(measurement=MeasurementConfig(enabled=False))
        )
        async with cluster:
            for r in cluster.scenario.requests.batch(2):
                await cluster.compose(r, confirm=False, timeout=60)
            snap = cluster.ledger.snapshot()
            await asyncio.sleep(0.2)
            delta = cluster.ledger.delta_since(snap)
            stats = cluster.measurement_stats()
            planes = [d.measurement for d in cluster.daemons.values()]
            errors = cluster.errors()
        return delta, stats, planes, errors

    delta, stats, planes, errors = asyncio.run(scenario())
    assert errors == []
    assert not stats["enabled"]
    assert stats["probes_sent"] == 0
    assert stats["samples_passive"] == 0
    assert all(p is None for p in planes)
    assert delta.get("net_measure", (0, 0))[0] == 0
