"""Unit tests for ADUs, the component runtime, and the media library."""

import numpy as np
import pytest

from repro.core.qos import QoSVector
from repro.core.resources import ResourceVector
from repro.services.adu import ADU, VideoFrame
from repro.services.component import (
    ComponentSpec,
    ProcessingError,
    QualitySpec,
    ServiceComponent,
)
from repro.services.media import (
    MEDIA_FUNCTIONS,
    deploy_media_component,
    make_media_component,
    make_transform,
)


def frame(w=640, h=480, bits=8):
    return VideoFrame.source(stream_id=1, timestamp=0.0, width=w, height=h, quant_bits=bits)


class TestADU:
    def test_fresh_assigns_increasing_seq(self):
        a, b = ADU.fresh(1, 0.0, 100), ADU.fresh(1, 0.0, 100)
        assert b.seq > a.seq

    def test_video_frame_size_consistent(self):
        f = frame(640, 480, 8)
        assert f.size_bytes == VideoFrame.nominal_size(640, 480, 8)

    def test_resize_scales_size(self):
        f = frame(640, 480)
        up = f.resized(1280, 960)
        assert up.size_bytes == 4 * f.size_bytes
        assert (up.width, up.height) == (1280, 960)

    def test_resize_invalid_rejected(self):
        with pytest.raises(ValueError):
            frame().resized(0, 100)

    def test_requantise_halves_size(self):
        f = frame(bits=8)
        q = f.requantised(4)
        assert q.size_bytes == f.size_bytes // 2
        assert q.quant_bits == 4

    def test_requantise_range_checked(self):
        with pytest.raises(ValueError):
            frame().requantised(0)
        with pytest.raises(ValueError):
            frame().requantised(20)

    def test_overlay_appends(self):
        f = frame().with_overlay("stock").with_overlay("weather")
        assert f.overlays == ("stock", "weather")

    def test_crop_inside_bounds(self):
        f = frame(100, 100)
        c = f.cropped(10, 10, 50, 40)
        assert (c.width, c.height) == (50, 40)
        assert c.crop == (10, 10, 50, 40)

    def test_crop_outside_rejected(self):
        with pytest.raises(ValueError):
            frame(100, 100).cropped(60, 60, 50, 50)

    def test_frames_are_immutable(self):
        f = frame()
        with pytest.raises(Exception):
            f.width = 10


class TestQualitySpec:
    def test_wildcard_accepts_all(self):
        assert QualitySpec.of().accepts("anything")

    def test_specific_formats(self):
        q = QualitySpec.of("yuv", "rgb")
        assert q.accepts("yuv") and not q.accepts("h264")

    def test_compatibility_intersection(self):
        a = QualitySpec.of("yuv")
        b = QualitySpec.of("yuv", "rgb")
        c = QualitySpec.of("h264")
        assert a.compatible_with(b)
        assert not a.compatible_with(c)

    def test_wildcard_compatible_both_ways(self):
        assert QualitySpec.of().compatible_with(QualitySpec.of("h264"))
        assert QualitySpec.of("h264").compatible_with(QualitySpec.of())

    def test_primary_format(self):
        assert QualitySpec.of("b", "a").primary_format() == "a"
        assert QualitySpec.of().primary_format() == "*"


class TestComponentSpec:
    def test_create_validates_inputs(self):
        with pytest.raises(ValueError):
            ComponentSpec.create(
                "f", 0, QoSVector({"delay": 0.0}), ResourceVector({}), n_inputs=0
            )
        with pytest.raises(ValueError):
            ComponentSpec.create(
                "f", 0, QoSVector({"delay": 0.0}), ResourceVector({}), bandwidth_factor=0.0
            )

    def test_component_ids_unique(self):
        a = ComponentSpec.create("f", 0, QoSVector({}), ResourceVector({}))
        b = ComponentSpec.create("f", 0, QoSVector({}), ResourceVector({}))
        assert a.component_id != b.component_id

    def test_service_delay_reads_qp(self):
        spec = ComponentSpec.create("f", 0, QoSVector({"delay": 0.042}), ResourceVector({}))
        assert spec.service_delay == 0.042


class TestServiceComponentRuntime:
    def make(self, transform=None, n_inputs=1, max_queue=4):
        spec = ComponentSpec.create(
            "f", 0, QoSVector({"delay": 0.01}), ResourceVector({"cpu": 1.0}), n_inputs=n_inputs
        )
        return ServiceComponent(spec, transform, max_queue=max_queue)

    def test_identity_default_transform(self):
        comp = self.make()
        adu = ADU.fresh(1, 0.0, 10)
        comp.enqueue(adu)
        out = comp.process_once()
        assert out == [adu]

    def test_ready_requires_all_queues(self):
        comp = self.make(n_inputs=2)
        comp.enqueue(ADU.fresh(1, 0.0, 10), queue_index=0)
        assert not comp.ready
        comp.enqueue(ADU.fresh(2, 0.0, 10), queue_index=1)
        assert comp.ready

    def test_multi_input_consumes_one_per_queue(self):
        merged = []

        def mixer(adus):
            merged.append(tuple(a.stream_id for a in adus))
            return [adus[0]]

        comp = self.make(transform=mixer, n_inputs=2)
        comp.enqueue(ADU.fresh(1, 0.0, 10), 0)
        comp.enqueue(ADU.fresh(2, 0.0, 10), 1)
        comp.process_once()
        assert merged == [(1, 2)]

    def test_queue_overflow_drops(self):
        comp = self.make(max_queue=2)
        assert comp.enqueue(ADU.fresh(1, 0.0, 1))
        assert comp.enqueue(ADU.fresh(1, 0.0, 1))
        assert not comp.enqueue(ADU.fresh(1, 0.0, 1))
        assert comp.dropped == 1

    def test_bad_queue_index_raises(self):
        comp = self.make()
        with pytest.raises(ProcessingError):
            comp.enqueue(ADU.fresh(1, 0.0, 1), queue_index=3)

    def test_drain_processes_all(self):
        comp = self.make(max_queue=16)
        for i in range(5):
            comp.enqueue(ADU.fresh(1, float(i), 1))
        out = comp.drain()
        assert len(out) == 5
        assert comp.processed == 5 and comp.emitted == 5

    def test_process_when_not_ready_returns_empty(self):
        assert self.make().process_once() == []

    def test_queue_depths(self):
        comp = self.make(n_inputs=2)
        comp.enqueue(ADU.fresh(1, 0.0, 1), 0)
        assert comp.queue_depths() == (1, 0)


class TestMediaLibrary:
    def test_six_functions(self):
        assert len(MEDIA_FUNCTIONS) == 6

    @pytest.mark.parametrize("fn", MEDIA_FUNCTIONS)
    def test_every_transform_runs(self, fn):
        out = make_transform(fn)([frame()])
        assert len(out) == 1
        assert isinstance(out[0], VideoFrame)

    def test_weather_and_stock_tickers_overlay(self):
        f = frame()
        assert make_transform("weather_ticker")([f])[0].overlays == ("weather",)
        assert make_transform("stock_ticker")([f])[0].overlays == ("stock",)

    def test_upscale_doubles_dimensions(self):
        out = make_transform("upscale")([frame(100, 50)])[0]
        assert (out.width, out.height) == (200, 100)

    def test_downscale_halves_dimensions(self):
        out = make_transform("downscale")([frame(100, 50)])[0]
        assert (out.width, out.height) == (50, 25)

    def test_subimage_extracts_quarter(self):
        out = make_transform("subimage")([frame(100, 100)])[0]
        assert (out.width, out.height) == (50, 50)
        assert out.crop is not None

    def test_requantify_halves_depth(self):
        out = make_transform("requantify")([frame(bits=8)])[0]
        assert out.quant_bits == 4

    def test_transform_rejects_plain_adu(self):
        with pytest.raises(ProcessingError):
            make_transform("upscale")([ADU.fresh(1, 0.0, 10)])

    def test_unknown_function_rejected(self):
        with pytest.raises(KeyError):
            make_transform("hologram")

    def test_make_media_component_randomised_qp(self):
        rng = np.random.default_rng(0)
        a = make_media_component("upscale", peer=1, rng=rng)
        b = make_media_component("upscale", peer=2, rng=rng)
        assert a.qp != b.qp or a.resources != b.resources

    def test_make_media_component_unknown_rejected(self):
        with pytest.raises(KeyError):
            make_media_component("nope", peer=0)

    def test_deploy_runs_end_to_end(self):
        spec = make_media_component("downscale", peer=0, rng=np.random.default_rng(1))
        comp = deploy_media_component(spec)
        comp.enqueue(frame(640, 480))
        out = comp.process_once()
        assert out[0].width == 320

    def test_bandwidth_factors_direction(self):
        rng = np.random.default_rng(2)
        up = make_media_component("upscale", 0, rng=rng)
        down = make_media_component("downscale", 0, rng=rng)
        assert up.bandwidth_factor > 1.0 > down.bandwidth_factor
