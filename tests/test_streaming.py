"""Tests for the streaming data plane over composed service graphs."""

import numpy as np
import pytest

from repro.core.bcp import BCPConfig
from repro.core.function_graph import FunctionGraph
from repro.core.session import RecoveryConfig, SessionManager
from repro.services.streaming import StreamingSession
from repro.sim.engine import Simulator

from worlds import MicroWorld


def composed_world(fns=("fa", "fb"), replicas=3):
    world = MicroWorld(n_peers=10, config=BCPConfig(budget=32))
    for i, fn in enumerate(fns):
        for r in range(replicas):
            world.place(fn, peer=2 + i * replicas + r, delay=0.002)
    return world


def compose_graph(world, fns=("fa", "fb")):
    req = world.request(FunctionGraph.linear(list(fns)), source=0, dest=9)
    result = world.bcp.compose(req, confirm=False)
    assert result.success
    return result.best


class TestBasicStreaming:
    def test_all_frames_delivered_without_loss(self):
        world = composed_world()
        graph = compose_graph(world)
        sim = Simulator()
        stream = StreamingSession(
            sim, world.overlay, lambda: graph, fps=10.0,
            rng=np.random.default_rng(0), model_loss=False,
        )
        stream.start(duration=2.0)
        sim.run(until=5.0)
        assert stream.stats.frames_sent == 19  # emissions at 0.1..1.9
        assert stream.stats.frames_delivered == stream.stats.frames_sent
        assert stream.stats.delivery_ratio == 1.0

    def test_latency_matches_graph_delay(self):
        world = composed_world()
        graph = compose_graph(world)
        sim = Simulator()
        stream = StreamingSession(
            sim, world.overlay, lambda: graph, fps=5.0,
            rng=np.random.default_rng(0), model_loss=False,
        )
        stream.start(duration=1.0)
        sim.run(until=5.0)
        expected = graph.end_to_end_qos(world.overlay).get("delay")
        assert stream.stats.mean_latency == pytest.approx(expected, rel=0.05)

    def test_loss_model_drops_some_frames(self):
        world = composed_world()
        # stretch the path: loss grows with delay in the micro world
        graph = compose_graph(world)
        sim = Simulator()
        stream = StreamingSession(
            sim, world.overlay, lambda: graph, fps=100.0,
            rng=np.random.default_rng(0), model_loss=True,
        )
        stream.start(duration=10.0)
        sim.run(until=20.0)
        assert 995 <= stream.stats.frames_sent <= 1000  # float drift at 100 fps
        assert stream.stats.frames_delivered < stream.stats.frames_sent
        assert stream.stats.frames_lost_link > 0

    def test_media_transforms_applied_end_to_end(self):
        world = MicroWorld(n_peers=10, config=BCPConfig(budget=16))
        world.place("downscale", peer=2)
        world.place("requantify", peer=5)
        graph = compose_graph(world, fns=("downscale", "requantify"))
        sim = Simulator()
        received = []
        stream = StreamingSession(
            sim, world.overlay, lambda: graph, fps=5.0,
            rng=np.random.default_rng(0), model_loss=False,
        )
        # capture delivered frames by wrapping the stats recording
        original = stream.stats.latencies.append

        stream_arrive = stream._arrive

        def capture(frame, stage, sent_at):
            chain = graph.pattern.topological_order()
            if stage >= len(chain):
                received.append(frame)
            stream_arrive(frame, stage, sent_at)

        stream._arrive = capture
        stream.start(duration=1.0)
        sim.run(until=5.0)
        assert received
        out = received[0]
        assert out.width == 320  # downscaled from 640
        assert out.quant_bits == 4  # requantified from 8

    def test_dag_rejected(self):
        world = MicroWorld(n_peers=10, config=BCPConfig(budget=32))
        fg = FunctionGraph.from_edges(
            ["fa", "fb", "fc", "fd"],
            [("fa", "fb"), ("fa", "fc"), ("fb", "fd"), ("fc", "fd")],
        )
        for fn, p in (("fa", 2), ("fb", 3), ("fc", 4), ("fd", 5)):
            world.place(fn, peer=p)
        req = world.request(fg, source=0, dest=9)
        result = world.bcp.compose(req, confirm=False)
        assert result.success
        sim = Simulator()
        stream = StreamingSession(sim, world.overlay, lambda: result.best)
        with pytest.raises(NotImplementedError):
            stream.start()

    def test_bad_fps_rejected(self):
        world = composed_world()
        with pytest.raises(ValueError):
            StreamingSession(Simulator(), world.overlay, lambda: None, fps=0.0)

    def test_no_graph_rejected(self):
        world = composed_world()
        stream = StreamingSession(Simulator(), world.overlay, lambda: None)
        with pytest.raises(RuntimeError):
            stream.start()


class TestFailoverGlitch:
    def failover_setup(self):
        world = composed_world(replicas=4)
        sim = Simulator()
        mgr = SessionManager(sim, world.bcp, config=RecoveryConfig(upper_bound=3.0))
        req = world.request(
            FunctionGraph.linear(["fa", "fb"]), source=0, dest=9,
            delay_bound=0.5, failure_req=0.02, duration=1000.0,
        )
        session = mgr.establish(req)
        assert session is not None and session.backups
        return world, sim, mgr, session

    def test_stream_survives_proactive_failover(self):
        world, sim, mgr, session = self.failover_setup()
        stream = StreamingSession(
            sim, world.overlay,
            lambda: session.current if session.active else None,
            fps=20.0,
            alive=lambda p: p not in world.dead,
            rng=np.random.default_rng(1),
            model_loss=False,
        )
        stream.start(duration=10.0)
        victim = session.current.component("fa").peer

        def kill():
            world.kill(victim)
            mgr.peer_departed(victim)

        sim.schedule(5.0, kill)
        sim.run(until=15.0)
        stats = stream.stats
        assert session.active  # failover succeeded
        assert stats.frames_lost_peer > 0  # frames died with the peer
        assert stats.frames_delivered > 0.8 * stats.frames_sent
        # the user-visible glitch is bounded by detection + a few frames
        assert stats.longest_gap() < 2.0

    def test_glitch_without_recovery_is_stream_death(self):
        world = composed_world(replicas=4)
        sim = Simulator()
        mgr = SessionManager(
            sim, world.bcp, config=RecoveryConfig(proactive=False, reactive=False)
        )
        req = world.request(
            FunctionGraph.linear(["fa", "fb"]), source=0, dest=9, duration=1000.0
        )
        session = mgr.establish(req)
        stream = StreamingSession(
            sim, world.overlay,
            lambda: session.current if session.active else None,
            fps=20.0,
            alive=lambda p: p not in world.dead,
            rng=np.random.default_rng(1),
            model_loss=False,
        )
        stream.start(duration=10.0)
        victim = session.current.component("fa").peer

        def kill():
            world.kill(victim)
            mgr.peer_departed(victim)

        sim.schedule(5.0, kill)
        sim.run(until=15.0)
        # without recovery the session fails: emission stops with it and
        # every frame after t=5 is lost, so barely half the 10 s x 20 fps
        # stream ever reaches the receiver
        assert not session.active
        expected_total = 10.0 * 20.0
        assert stream.stats.frames_delivered < 0.7 * expected_total
