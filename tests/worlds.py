"""Hand-built miniature worlds for protocol tests.

The figure-scale scenarios randomise everything; protocol tests instead
need exact control over who hosts what, at which delay, with how much
capacity — so assertions can be computed by hand.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

import networkx as nx
import numpy as np

from repro.core.bcp import BCP, BCPConfig
from repro.core.qos import QoSRequirement, QoSVector, loss_to_additive
from repro.core.request import CompositeRequest
from repro.core.resources import ResourcePool, ResourceVector
from repro.dht.pastry import PastryNetwork
from repro.discovery.registry import ServiceRegistry
from repro.services.component import ComponentSpec, QualitySpec
from repro.topology.overlay import Overlay
from repro.topology.routing import OverlayRouter


def micro_overlay(n_peers: int = 8, unit_delay: float = 0.010) -> Overlay:
    """A full mesh where latency(a, b) = unit_delay * |a - b|.

    Predictable by construction: the shortest path between two peers is
    always the direct link (metric is a line metric).
    """
    g = nx.Graph()
    g.add_nodes_from(range(n_peers))
    for a in range(n_peers):
        for b in range(a + 1, n_peers):
            g.add_edge(
                a,
                b,
                delay=unit_delay * (b - a),
                bandwidth=10.0,
                loss_add=loss_to_additive(0.001) * (b - a),
            )
    return Overlay(graph=g, router=OverlayRouter(g), kind="micro")


class MicroWorld:
    """Overlay + pool + registry + BCP with hand-placed components."""

    def __init__(
        self,
        n_peers: int = 8,
        cpu: float = 100.0,
        memory: float = 400.0,
        seed: int = 0,
        config: Optional[BCPConfig] = None,
        unit_delay: float = 0.010,
    ) -> None:
        self.overlay = micro_overlay(n_peers, unit_delay)
        caps = {
            p: ResourceVector({"cpu": cpu, "memory": memory})
            for p in self.overlay.peers()
        }
        self.pool = ResourcePool(self.overlay, caps)
        self.dht = PastryNetwork(self.overlay, rng=np.random.default_rng(seed))
        self.dht.build()
        self.registry = ServiceRegistry(self.dht)
        self.dead: set[int] = set()
        self.bcp = BCP(
            self.overlay,
            self.pool,
            self.registry,
            config=config or BCPConfig(),
            alive=lambda p: p not in self.dead,
            rng=np.random.default_rng(seed + 1),
        )
        self.specs: List[ComponentSpec] = []

    def place(
        self,
        function: str,
        peer: int,
        delay: float = 0.005,
        loss: float = 0.0,
        cpu: float = 10.0,
        memory: float = 20.0,
        bandwidth_factor: float = 1.0,
        input_formats: Tuple[str, ...] = (),
        output_formats: Tuple[str, ...] = (),
    ) -> ComponentSpec:
        """Deploy one component with fully specified properties."""
        spec = ComponentSpec.create(
            function=function,
            peer=peer,
            qp=QoSVector({"delay": delay, "loss": loss}),
            resources=ResourceVector({"cpu": cpu, "memory": memory}),
            input_quality=QualitySpec.of(*input_formats),
            output_quality=QualitySpec.of(*output_formats),
            bandwidth_factor=bandwidth_factor,
        )
        self.registry.register(spec)
        self.specs.append(spec)
        return spec

    def request(
        self,
        function_graph,
        source: int = 0,
        dest: int = 1,
        delay_bound: float = 10.0,
        loss_bound: float = 0.5,
        bandwidth: float = 0.5,
        **kwargs,
    ) -> CompositeRequest:
        return CompositeRequest.create(
            function_graph=function_graph,
            qos=QoSRequirement(
                {"delay": delay_bound, "loss": loss_to_additive(loss_bound)}
            ),
            source_peer=source,
            dest_peer=dest,
            bandwidth=bandwidth,
            **kwargs,
        )

    def kill(self, peer: int) -> None:
        self.dead.add(peer)
        self.registry.peer_departed(peer)
        self.dht.node_departed(peer)
