"""Transport and RPC layer tests: loopback, TCP, retries, idempotency."""

import asyncio

import pytest

from repro.net.codec import WIRE_VERSION, WIRE_VERSION_BINARY
from repro.net.rpc import DedupCache, RetryPolicy, RpcEndpoint, RpcTimeout
from repro.net.transport import LoopbackTransport, TcpTransport, TransportError, _negotiate


def run(coro):
    return asyncio.run(coro)


def collector(received):
    async def handler(envelope):
        received.append(envelope)

    return handler


class TestLoopback:
    def test_delivers_decoded_envelopes(self):
        async def scenario():
            t = LoopbackTransport()
            received = []
            t.register(0, collector([]))
            t.register(1, collector(received))
            await t.start()
            await t.send(0, 1, {"kind": "req", "n": 7})
            await asyncio.sleep(0.01)
            await t.close()
            return received

        out = run(scenario())
        assert out == [{"kind": "req", "n": 7}]

    def test_latency_delays_delivery(self):
        async def scenario():
            t = LoopbackTransport(latency=0.05)
            received = []
            t.register(0, collector([]))
            t.register(1, collector(received))
            await t.start()
            await t.send(0, 1, {"n": 1})
            await asyncio.sleep(0.01)
            early = len(received)
            await asyncio.sleep(0.08)
            await t.close()
            return early, len(received)

        early, late = run(scenario())
        assert early == 0 and late == 1

    def test_loss_drops_frames(self):
        async def scenario():
            t = LoopbackTransport(loss=0.5, seed=3)
            received = []
            t.register(0, collector([]))
            t.register(1, collector(received))
            await t.start()
            for i in range(200):
                await t.send(0, 1, {"n": i})
            await asyncio.sleep(0.05)
            await t.close()
            return t.frames_sent, t.frames_dropped, len(received)

        sent, dropped, delivered = run(scenario())
        assert sent == 200
        assert delivered == sent - dropped
        assert 50 < dropped < 150  # ~50% with a seeded generator

    def test_kill_is_a_silent_drop(self):
        async def scenario():
            t = LoopbackTransport()
            received = []
            t.register(0, collector([]))
            t.register(1, collector(received))
            await t.start()
            t.kill(1)
            await t.send(0, 1, {"n": 1})  # no exception: packet into the void
            await asyncio.sleep(0.01)
            with pytest.raises(TransportError, match="down"):
                await t.send(1, 0, {"n": 2})  # a dead peer cannot send
            await t.close()
            return received, t.frames_dropped

        received, dropped = run(scenario())
        assert received == [] and dropped == 1

    def test_unknown_destination(self):
        async def scenario():
            t = LoopbackTransport()
            t.register(0, collector([]))
            await t.start()
            with pytest.raises(TransportError, match="no such peer"):
                await t.send(0, 99, {"n": 1})
            await t.close()

        run(scenario())

    def test_send_before_start_refused(self):
        async def scenario():
            t = LoopbackTransport()
            t.register(0, collector([]))
            with pytest.raises(TransportError, match="not started"):
                await t.send(0, 0, {"n": 1})

        run(scenario())

    def test_invalid_loss_rejected(self):
        with pytest.raises(ValueError):
            LoopbackTransport(loss=1.0)


class TestTcp:
    def test_round_trip_over_sockets(self):
        async def scenario():
            t = TcpTransport()
            received = []
            t.register(0, collector([]))
            t.register(1, collector(received))
            await t.start()
            assert set(t.addresses) == {0, 1}
            for i in range(5):
                await t.send(0, 1, {"n": i})
            await asyncio.sleep(0.05)
            await t.close()
            return received

        out = run(scenario())
        assert [e["n"] for e in out] == list(range(5))

    def test_killed_peer_raises(self):
        async def scenario():
            t = TcpTransport()
            t.register(0, collector([]))
            t.register(1, collector([]))
            await t.start()
            t.kill(1)
            with pytest.raises(TransportError):
                await t.send(0, 1, {"n": 1})
            await t.close()

        run(scenario())


class TestNegotiation:
    def test_negotiate_picks_lowest_common_version(self):
        assert _negotiate(2, 2) == WIRE_VERSION_BINARY
        assert _negotiate(2, 1) == WIRE_VERSION
        assert _negotiate(1, 2) == WIRE_VERSION
        # a hypothetical future version neither side implements here
        # degrades to the universal JSON floor, never to garbage
        assert _negotiate(9, 9) == WIRE_VERSION

    @staticmethod
    async def _version_scenario(**kwargs):
        t = TcpTransport(**kwargs)
        received = []
        t.register(0, collector([]))
        t.register(1, collector(received))
        await t.start()
        await t.send(0, 1, {"kind": "req", "n": 1})
        await asyncio.sleep(0.05)
        version = t._pool[(0, 1)].version
        frames = t.frames_sent
        await t.close()
        return version, frames, received

    def test_tcp_negotiates_binary_by_default(self):
        version, frames, received = run(self._version_scenario())
        assert version == WIRE_VERSION_BINARY
        assert received == [{"kind": "req", "n": 1}]
        # the hello/ack handshake frames are protocol plumbing: they are
        # invisible to handlers and never counted as sent frames
        assert frames == 1

    def test_tcp_version_ceiling_forces_json_fallback(self):
        version, frames, received = run(
            self._version_scenario(max_wire_version=WIRE_VERSION)
        )
        assert version == WIRE_VERSION
        assert received == [{"kind": "req", "n": 1}]
        assert frames == 1

    def test_tcp_rejects_unknown_version_ceiling(self):
        with pytest.raises(ValueError):
            TcpTransport(max_wire_version=99)

    def test_loopback_rejects_unknown_version(self):
        with pytest.raises(ValueError):
            LoopbackTransport(wire_version=99)


class TestCoalescing:
    @staticmethod
    async def _burst_scenario(t):
        received = []
        t.register(0, collector([]))
        t.register(1, collector(received))
        await t.start()
        await asyncio.gather(*(t.send(0, 1, {"n": i}) for i in range(50)))
        await asyncio.sleep(0.1)
        await t.close()
        return received

    @pytest.mark.parametrize("coalesce", [False, True], ids=["drain-per-frame", "coalesced"])
    def test_loopback_burst_preserves_order(self, coalesce):
        out = run(self._burst_scenario(LoopbackTransport(coalesce=coalesce)))
        assert [e["n"] for e in out] == list(range(50))

    @pytest.mark.parametrize("coalesce", [False, True], ids=["drain-per-frame", "coalesced"])
    def test_tcp_burst_preserves_order(self, coalesce):
        out = run(self._burst_scenario(TcpTransport(coalesce=coalesce)))
        assert [e["n"] for e in out] == list(range(50))

    def test_tcp_flush_interval_still_delivers(self):
        out = run(self._burst_scenario(TcpTransport(flush_interval=0.005)))
        assert [e["n"] for e in out] == list(range(50))

    def test_loopback_coalescing_batches_queue_items(self):
        async def scenario():
            t = LoopbackTransport(coalesce=True)
            received = []
            t.register(0, collector([]))
            t.register(1, collector(received))
            await t.start()
            # all sends land within one event-loop turn: the dispatcher
            # must see them as a single batched queue item
            for i in range(10):
                await t.send(0, 1, {"n": i})
            depth = t._queues[1].qsize()
            await asyncio.sleep(0.05)
            await t.close()
            return depth, received

        depth, received = run(scenario())
        assert depth <= 1
        assert [e["n"] for e in received] == list(range(10))


class TestRpc:
    @staticmethod
    def make_pair(transport=None, retry=None):
        t = transport or LoopbackTransport()
        a = RpcEndpoint(t, 0, retry=retry, seed=1)
        b = RpcEndpoint(t, 1, retry=retry, seed=2)
        return t, a, b

    def test_call_returns_handler_reply(self):
        async def scenario():
            t, a, b = self.make_pair()

            async def handler(src, body):
                return {"echo": body["x"], "from": src}

            b.on(dict, handler)
            await t.start()
            reply = await a.call(1, {"x": 42})
            await t.close()
            return reply

        assert run(scenario()) == {"echo": 42, "from": 0}

    def test_missing_handler_reports_error(self):
        async def scenario():
            t, a, b = self.make_pair()
            await t.start()
            reply = await a.call(1, {"x": 1})
            await t.close()
            return reply

        assert "error" in run(scenario())

    def test_handler_exception_becomes_error_reply(self):
        async def scenario():
            t, a, b = self.make_pair()

            async def handler(src, body):
                raise KeyError("boom")

            b.on(dict, handler)
            await t.start()
            reply = await a.call(1, {"x": 1})
            await t.close()
            return reply

        assert "KeyError" in run(scenario())["error"]

    def test_timeout_after_bounded_retries(self):
        async def scenario():
            policy = RetryPolicy(timeout=0.05, retries=2, backoff=0.01)
            t, a, b = self.make_pair(retry=policy)
            await t.start()
            t.kill(1)
            with pytest.raises(RpcTimeout, match="3 attempts"):
                await a.call(1, {"x": 1})
            await t.close()
            return a.retries_performed

        assert run(scenario()) == 2

    def test_lossy_link_retries_until_reply(self):
        async def scenario():
            policy = RetryPolicy(timeout=0.05, retries=8, backoff=0.005, jitter=0.0)
            t = LoopbackTransport(loss=0.4, seed=7)
            a = RpcEndpoint(t, 0, retry=policy, seed=1)
            b = RpcEndpoint(t, 1, retry=policy, seed=2)
            calls = []

            async def handler(src, body):
                calls.append(body["n"])
                return {"ok": True}

            b.on(dict, handler)
            await t.start()
            for n in range(10):
                await a.call(1, {"n": n})
            await t.close()
            return calls, a.retries_performed

        calls, retries = run(scenario())
        # every logical message processed exactly once despite loss + retries
        assert calls == list(range(10))
        assert retries > 0

    def test_duplicate_request_replays_cached_reply(self):
        async def scenario():
            t, a, b = self.make_pair()
            invocations = []

            async def handler(src, body):
                invocations.append(body)
                return {"val": len(invocations)}

            b.on(dict, handler)
            await t.start()
            envelope = {"kind": "req", "id": 777, "src": 0, "dst": 1, "body": {"x": 1}}
            fut = asyncio.get_running_loop().create_future()
            a._pending[777] = fut
            await t.send(0, 1, envelope)
            first = await asyncio.wait_for(fut, 1)
            fut2 = asyncio.get_running_loop().create_future()
            a._pending[777] = fut2
            await t.send(0, 1, envelope)  # identical retry
            second = await asyncio.wait_for(fut2, 1)
            await t.close()
            return invocations, first, second

        invocations, first, second = run(scenario())
        assert len(invocations) == 1  # handler ran once
        assert first == second == {"val": 1}


class TestPolicyAndDedup:
    def test_retry_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0)
        with pytest.raises(ValueError):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(factor=0.5)

    def test_dedup_cache_fifo_eviction(self):
        cache = DedupCache(capacity=3)
        assert not cache.seen("a")
        assert not cache.seen("b")
        assert not cache.seen("c")
        assert cache.seen("a")
        assert not cache.seen("d")  # evicts "a" (oldest)
        assert "a" not in cache
        assert not cache.seen("a")
        assert len(cache) == 3

    def test_dedup_cache_capacity_validation(self):
        with pytest.raises(ValueError):
            DedupCache(capacity=0)
