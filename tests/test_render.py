"""Tests for terminal renderings of graphs."""

import pytest

from repro.core.function_graph import FunctionGraph
from repro.core.qos import QoSVector
from repro.core.render import (
    describe_composition,
    render_function_graph,
    render_service_graph,
)
from repro.core.resources import ResourceVector
from repro.core.service_graph import ServiceGraph
from repro.discovery.metadata import ServiceMetadata
from repro.services.component import QualitySpec

from worlds import micro_overlay


def meta(cid, fn, peer):
    return ServiceMetadata(
        component_id=cid, function=fn, peer=peer,
        qp=QoSVector({"delay": 0.01, "loss": 0.0}),
        resources=ResourceVector({"cpu": 5.0}),
        input_quality=QualitySpec(), output_quality=QualitySpec(),
    )


class TestRenderFunctionGraph:
    def test_linear_chain(self):
        fg = FunctionGraph.linear(["downscale", "ticker"])
        out = render_function_graph(fg)
        assert out == "[downscale] ──▶ [ticker]"

    def test_dag_one_line_per_branch(self):
        fg = FunctionGraph.from_edges(
            "abcd", [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
        )
        out = render_function_graph(fg)
        lines = out.splitlines()
        assert len(lines) == 2
        assert all(l.startswith("[a]") and l.endswith("[d]") for l in lines)

    def test_commutation_marked(self):
        fg = FunctionGraph.linear(["a", "b", "c"], [("b", "c")])
        out = render_function_graph(fg)
        assert "~▶" in out

    def test_single_function(self):
        assert render_function_graph(FunctionGraph.linear(["f"])) == "[f]"


class TestRenderServiceGraph:
    def graph(self):
        fg = FunctionGraph.linear(["fa", "fb"])
        return ServiceGraph(
            fg, {"fa": meta(1, "fa", 2), "fb": meta(2, "fb", 3)},
            source_peer=0, dest_peer=7, base_bandwidth=1.0,
        )

    def test_hosts_shown(self):
        out = render_service_graph(self.graph())
        assert "(v0)" in out and "(v7)" in out
        assert "[fa s1@v2]" in out and "[fb s2@v3]" in out

    def test_describe_includes_qos_and_links(self):
        mov = micro_overlay(8)
        out = describe_composition(self.graph(), mov)
        assert "end-to-end" in out
        assert "service links:" in out
        assert "sender" in out and "receiver" in out
        assert "Mbps" in out

    def test_describe_without_overlay_skips_qos(self):
        out = describe_composition(self.graph())
        assert "end-to-end" not in out
        assert "service links:" in out
