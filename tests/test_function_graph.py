"""Unit + property tests for function graphs, commutations, patterns."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.function_graph import FunctionGraph, FunctionGraphError


class TestConstruction:
    def test_linear_chain(self):
        fg = FunctionGraph.linear(["a", "b", "c"])
        assert fg.sources() == ("a",)
        assert fg.sinks() == ("c",)
        assert fg.successors("a") == ("b",)
        assert fg.predecessors("c") == ("b",)
        assert fg.is_linear()

    def test_single_function(self):
        fg = FunctionGraph.linear(["only"])
        assert fg.sources() == fg.sinks() == ("only",)
        assert len(fg) == 1

    def test_diamond_dag(self):
        fg = FunctionGraph.from_edges(
            "abcd", [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
        )
        assert not fg.is_linear()
        assert fg.sources() == ("a",) and fg.sinks() == ("d",)

    def test_cycle_rejected(self):
        with pytest.raises(FunctionGraphError):
            FunctionGraph.from_edges("ab", [("a", "b"), ("b", "a")])

    def test_self_loop_rejected(self):
        with pytest.raises(FunctionGraphError):
            FunctionGraph.from_edges("ab", [("a", "a"), ("a", "b")])

    def test_unknown_function_in_edge_rejected(self):
        with pytest.raises(FunctionGraphError):
            FunctionGraph.from_edges("ab", [("a", "z")])

    def test_duplicate_functions_rejected(self):
        with pytest.raises(FunctionGraphError):
            FunctionGraph.from_edges(["a", "a"], [("a", "a")])

    def test_empty_rejected(self):
        with pytest.raises(FunctionGraphError):
            FunctionGraph.from_edges([], [])

    def test_isolated_function_rejected(self):
        with pytest.raises(FunctionGraphError):
            FunctionGraph.from_edges("abc", [("a", "b")])


class TestTopologicalOrder:
    def test_linear_order(self):
        fg = FunctionGraph.linear(["x", "y", "z"])
        assert fg.topological_order() == ["x", "y", "z"]

    def test_dag_order_respects_edges(self):
        fg = FunctionGraph.from_edges(
            "abcd", [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
        )
        order = fg.topological_order()
        for a, b in fg.edges:
            assert order.index(a) < order.index(b)


class TestBranches:
    def test_linear_single_branch(self):
        fg = FunctionGraph.linear(["a", "b", "c"])
        assert fg.branches() == [("a", "b", "c")]

    def test_diamond_two_branches(self):
        fg = FunctionGraph.from_edges(
            "abcd", [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
        )
        assert fg.branches() == [("a", "b", "d"), ("a", "c", "d")]

    def test_every_function_on_some_branch(self):
        fg = FunctionGraph.from_edges(
            "abcde",
            [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d"), ("d", "e")],
        )
        covered = {f for branch in fg.branches() for f in branch}
        assert covered == set(fg.functions)


class TestCommutation:
    def chain_with_pair(self):
        return FunctionGraph.linear(["a", "b", "c", "d"], [("b", "c")])

    def test_valid_pair_accepted(self):
        fg = self.chain_with_pair()
        assert fg.commutation_partner("b") == "c"
        assert fg.commutation_partner("a") is None

    def test_non_adjacent_pair_rejected(self):
        with pytest.raises(FunctionGraphError):
            FunctionGraph.linear(["a", "b", "c", "d"], [("a", "c")])

    def test_fan_out_upstream_pair_rejected(self):
        # a has two successors: "exchange the order of a and b" is
        # ill-defined (which branch would come first?)
        with pytest.raises(FunctionGraphError):
            FunctionGraph.from_edges(
                "abcd", [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")], [("a", "b")]
            )

    def test_fan_out_downstream_of_pair_allowed(self):
        # b fans out *after* the pair: the swap is still well-defined
        # (b's branches re-root at a)
        fg = FunctionGraph.from_edges(
            "abcd", [("a", "b"), ("b", "c"), ("b", "d")], [("a", "b")]
        )
        swapped = fg.swap("a", "b")
        assert ("b", "a") in swapped.edges
        assert ("a", "c") in swapped.edges and ("a", "d") in swapped.edges

    def test_swap_reverses_order(self):
        fg = self.chain_with_pair()
        swapped = fg.swap("b", "c")
        assert ("a", "c") in swapped.edges
        assert ("c", "b") in swapped.edges
        assert ("b", "d") in swapped.edges
        assert swapped.topological_order() == ["a", "c", "b", "d"]

    def test_swap_non_adjacent_rejected(self):
        fg = self.chain_with_pair()
        with pytest.raises(FunctionGraphError):
            fg.swap("a", "c")

    def test_swap_at_chain_head(self):
        fg = FunctionGraph.linear(["a", "b", "c"], [("a", "b")])
        swapped = fg.swap("a", "b")
        assert swapped.sources() == ("b",)
        assert swapped.topological_order() == ["b", "a", "c"]

    def test_swap_at_chain_tail(self):
        fg = FunctionGraph.linear(["a", "b", "c"], [("b", "c")])
        swapped = fg.swap("b", "c")
        assert swapped.sinks() == ("b",)

    def test_ordered_pair(self):
        fg = self.chain_with_pair()
        assert fg.ordered_pair(frozenset({"b", "c"})) == ("b", "c")
        swapped = fg.swap("b", "c")
        assert swapped.ordered_pair(frozenset({"b", "c"})) == ("c", "b")


class TestCompositionPatterns:
    def test_no_commutation_single_pattern(self):
        fg = FunctionGraph.linear(["a", "b", "c"])
        patterns = fg.composition_patterns()
        assert len(patterns) == 1
        assert patterns[0][0] == frozenset()

    def test_one_pair_two_patterns(self):
        fg = FunctionGraph.linear(["a", "b", "c"], [("b", "c")])
        patterns = fg.composition_patterns()
        assert len(patterns) == 2
        orders = {tuple(p.topological_order()) for _, p in patterns}
        assert orders == {("a", "b", "c"), ("a", "c", "b")}

    def test_two_disjoint_pairs_four_patterns(self):
        fg = FunctionGraph.linear(
            ["a", "b", "c", "d", "e"], [("a", "b"), ("c", "d")]
        )
        patterns = fg.composition_patterns()
        assert len(patterns) == 4

    def test_max_patterns_cap(self):
        fg = FunctionGraph.linear(
            ["a", "b", "c", "d", "e"], [("a", "b"), ("c", "d")]
        )
        assert len(fg.composition_patterns(max_patterns=3)) == 3

    def test_original_pattern_first(self):
        fg = FunctionGraph.linear(["a", "b", "c"], [("b", "c")])
        applied, first = fg.composition_patterns()[0]
        assert applied == frozenset()
        assert first.edges == fg.edges

    def test_patterns_preserve_function_set(self):
        fg = FunctionGraph.linear(["a", "b", "c", "d"], [("b", "c")])
        for _, p in fg.composition_patterns():
            assert set(p.functions) == set(fg.functions)
            p.validate()


@st.composite
def random_chain(draw):
    n = draw(st.integers(min_value=1, max_value=8))
    return [f"f{i}" for i in range(n)]


class TestProperties:
    @given(random_chain())
    @settings(max_examples=30, deadline=None)
    def test_linear_graph_invariants(self, fns):
        fg = FunctionGraph.linear(fns)
        assert fg.topological_order() == fns
        assert fg.branches() == [tuple(fns)]
        assert len(fg.edges) == len(fns) - 1

    @given(st.integers(min_value=3, max_value=7), st.integers(min_value=0, max_value=5))
    @settings(max_examples=30, deadline=None)
    def test_swap_is_involution(self, n, pos):
        fns = [f"f{i}" for i in range(n)]
        i = min(pos, n - 2)
        fg = FunctionGraph.linear(fns, [(fns[i], fns[i + 1])])
        twice = fg.swap(fns[i], fns[i + 1]).swap(fns[i + 1], fns[i])
        assert twice.edges == fg.edges
