"""Tests for the terminal plotting helpers and the CLI entry point."""

import math

import pytest

from repro.__main__ import build_parser, main
from repro.experiments.harness import Series
from repro.experiments.plotting import ascii_chart, sparkline


class TestSparkline:
    def test_monotone_ramp(self):
        s = sparkline([1, 2, 3, 4])
        assert len(s) == 4
        assert s[0] == "▁" and s[-1] == "█"

    def test_constant_mid_block(self):
        assert set(sparkline([5, 5, 5])) <= set("▁▂▃▄▅▆▇█")

    def test_nan_becomes_space(self):
        assert " " in sparkline([1.0, math.nan, 2.0])

    def test_empty(self):
        assert sparkline([]) == ""


class TestAsciiChart:
    def two_series(self):
        a, b = Series("alpha"), Series("beta")
        for x in range(5):
            a.add(x, x * 1.0)
            b.add(x, 4.0 - x)
        return [a, b]

    def test_contains_legend_and_labels(self):
        chart = ascii_chart(self.two_series(), x_label="load", y_label="ratio")
        assert "o=alpha" in chart and "x=beta" in chart
        assert "[load]" in chart and "[ratio]" in chart

    def test_axis_bounds_rendered(self):
        chart = ascii_chart(self.two_series())
        assert "4" in chart and "0" in chart

    def test_markers_plotted(self):
        chart = ascii_chart(self.two_series())
        assert chart.count("o") >= 4  # legend + points
        assert chart.count("x") >= 4

    def test_dimensions(self):
        chart = ascii_chart(self.two_series(), width=30, height=8)
        body_lines = [l for l in chart.splitlines() if "┤" in l]
        assert len(body_lines) == 8

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            ascii_chart(self.two_series(), width=5, height=2)

    def test_empty_series_handled(self):
        assert ascii_chart([]) == "(no series)"
        assert ascii_chart([Series("empty")]) == "(no data)"

    def test_constant_series(self):
        s = Series("flat")
        for x in range(3):
            s.add(x, 7.0)
        chart = ascii_chart([s])
        assert "o" in chart


class TestCli:
    def test_parser_accepts_known_experiments(self):
        parser = build_parser()
        for name in ("fig8", "fig9", "fig10", "fig11", "overhead", "trust", "all"):
            args = parser.parse_args([name, "--quick"])
            assert args.experiment == name

    def test_parser_rejects_unknown(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig99"])

    def test_quick_fig10_runs(self, capsys):
        rc = main(["fig10", "--quick", "--seed", "3"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "total setup(ms)" in out

    def test_plot_flag_renders_chart(self, capsys):
        rc = main(["fig10", "--quick", "--plot"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "└" in out  # chart axis present
