"""Tests for arrival processes and Zipf popularity."""

import numpy as np
import pytest

from repro.sim.engine import Simulator
from repro.workload import (
    AsyncioScheduler,
    PoissonArrivals,
    RequestConfig,
    RequestGenerator,
    ZipfFunctionSampler,
    zipf_weights,
)


class TestPoissonArrivals:
    def test_mean_rate_matches(self):
        sim = Simulator()
        count = []
        proc = PoissonArrivals(sim, rate=5.0, callback=lambda: count.append(sim.now),
                               rng=np.random.default_rng(0))
        proc.start()
        sim.run(until=200.0)
        # E = 1000 arrivals; Poisson sd ~ 32
        assert 880 <= len(count) <= 1120
        assert proc.arrivals == len(count)

    def test_interarrivals_exponential_shape(self):
        sim = Simulator()
        times = []
        proc = PoissonArrivals(sim, rate=2.0, callback=lambda: times.append(sim.now),
                               rng=np.random.default_rng(1))
        proc.start()
        sim.run(until=500.0)
        gaps = np.diff(times)
        # exponential: mean ≈ sd
        assert abs(gaps.mean() - gaps.std()) < 0.15 * gaps.mean()

    def test_stop_halts(self):
        sim = Simulator()
        count = []
        proc = PoissonArrivals(sim, rate=10.0, callback=lambda: count.append(1),
                               rng=np.random.default_rng(2))
        proc.start()
        sim.run(until=5.0)
        proc.stop()
        n = len(count)
        sim.run(until=50.0)
        assert len(count) == n

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            PoissonArrivals(Simulator(), rate=0.0, callback=lambda: None)

    def test_stop_discards_inflight_arrival(self):
        # stop() between arming and firing: the scheduled timer still
        # runs, but the callback must not — the stream is truly closed
        sim = Simulator()
        count = []
        proc = PoissonArrivals(sim, rate=1.0, callback=lambda: count.append(1),
                               rng=np.random.default_rng(3))
        proc.start()  # one arrival armed, none fired yet
        proc.stop()
        sim.run(until=100.0)
        assert count == []
        assert proc.arrivals == 0

    def test_stop_idempotent(self):
        proc = PoissonArrivals(Simulator(), rate=1.0, callback=lambda: None,
                               rng=np.random.default_rng(4))
        proc.start()
        proc.stop()
        proc.stop()  # second stop is a no-op, not an error
        assert not proc.running

    def test_restart_opens_new_generation(self):
        sim = Simulator()
        count = []
        proc = PoissonArrivals(sim, rate=10.0, callback=lambda: count.append(1),
                               rng=np.random.default_rng(5))
        proc.start()
        sim.run(until=5.0)
        proc.stop()
        first = len(count)
        assert first > 0
        sim.run(until=10.0)
        assert len(count) == first  # stopped stream stays silent
        proc.start()  # restart: a new generation of timers
        sim.run(until=20.0)
        assert len(count) > first
        with pytest.raises(RuntimeError):
            proc.start()  # but double-start while running is still a bug

    def test_stale_generation_timer_ignored(self):
        # a timer armed by life N must not fire arrivals in life N+1
        sim = Simulator()
        count = []
        proc = PoissonArrivals(sim, rate=1.0, callback=lambda: count.append(1),
                               rng=np.random.default_rng(6))
        proc.start()  # life 1 arms its first timer
        proc.stop()
        proc.start()  # life 2 arms its own; life 1's is now stale
        sim.run(until=2000.0)
        # every arrival was produced by exactly one live chain: had the
        # stale timer survived, two chains would double the rate
        assert proc.arrivals == len(count)
        gaps = len(count)
        assert 1700 <= gaps <= 2300  # one rate-1.0 chain, not two


class TestAsyncioScheduler:
    def test_schedules_on_wall_clock(self):
        import asyncio

        async def scenario():
            sched = AsyncioScheduler()
            fired = asyncio.Event()
            sched.schedule(0.01, fired.set)
            t0 = sched.now
            await asyncio.wait_for(fired.wait(), timeout=2.0)
            return sched.now - t0

        elapsed = asyncio.run(scenario())
        assert elapsed >= 0.009

    def test_negative_delay_clamped(self):
        import asyncio

        async def scenario():
            sched = AsyncioScheduler()
            fired = asyncio.Event()
            sched.schedule(-5.0, fired.set)
            await asyncio.wait_for(fired.wait(), timeout=2.0)
            return True

        assert asyncio.run(scenario())

    def test_drives_poisson_arrivals_open_loop(self):
        import asyncio

        async def scenario():
            sched = AsyncioScheduler()
            count = []
            proc = PoissonArrivals(sched, rate=200.0,
                                   callback=lambda: count.append(1),
                                   rng=np.random.default_rng(7))
            proc.start()
            await asyncio.sleep(0.25)
            proc.stop()
            n = len(count)
            await asyncio.sleep(0.05)
            assert len(count) == n  # no arrivals after stop
            return n

        n = asyncio.run(scenario())
        assert n > 5  # ~50 expected; just prove the stream flowed


class TestZipfWeights:
    def test_normalised(self):
        w = zipf_weights(10, 0.8)
        assert w.sum() == pytest.approx(1.0)
        assert len(w) == 10

    def test_zero_skew_uniform(self):
        w = zipf_weights(5, 0.0)
        assert np.allclose(w, 0.2)

    def test_monotone_decreasing(self):
        w = zipf_weights(8, 1.2)
        assert all(a >= b for a, b in zip(w, w[1:]))

    def test_higher_skew_more_concentrated(self):
        assert zipf_weights(10, 2.0)[0] > zipf_weights(10, 0.5)[0]

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_weights(0, 1.0)
        with pytest.raises(ValueError):
            zipf_weights(5, -0.1)


class TestZipfFunctionSampler:
    def test_distinct_samples(self):
        sampler = ZipfFunctionSampler([f"f{i}" for i in range(10)], skew=1.0,
                                      rng=np.random.default_rng(0))
        for _ in range(20):
            out = sampler.sample(4)
            assert len(out) == len(set(out)) == 4

    def test_popular_functions_dominate(self):
        sampler = ZipfFunctionSampler([f"f{i}" for i in range(20)], skew=1.5,
                                      rng=np.random.default_rng(0))
        hits = sum(1 for _ in range(300) if "f0" in sampler.sample(1))
        # rank-0 weight at skew 1.5 over 20 items is ~0.38
        assert hits > 80

    def test_k_clamped(self):
        sampler = ZipfFunctionSampler(["a", "b"], rng=np.random.default_rng(0))
        assert sorted(sampler.sample(10)) == ["a", "b"]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ZipfFunctionSampler([])

    def test_generator_integration(self, overlay):
        gen = RequestGenerator(
            overlay,
            [f"F{i:03d}" for i in range(1, 21)],
            RequestConfig(function_count=(2, 2), popularity_skew=1.5),
            rng=np.random.default_rng(0),
        )
        counts = {}
        for _ in range(150):
            for fn in gen.next_request().function_graph.functions:
                counts[fn] = counts.get(fn, 0) + 1
        ranked = sorted(counts.values(), reverse=True)
        # the top function should be requested far more than the median
        assert ranked[0] >= 3 * ranked[len(ranked) // 2]
