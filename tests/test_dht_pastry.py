"""Integration-level tests for the Pastry network: routing, storage, churn."""

import math

import numpy as np
import pytest

from repro.dht.id_space import circular_distance, key_for
from repro.dht.pastry import PastryNetwork, RoutingFailure


@pytest.fixture
def dht(overlay):
    net = PastryNetwork(overlay, rng=np.random.default_rng(77))
    net.build()
    return net


class TestConstruction:
    def test_one_node_per_peer(self, dht, overlay):
        assert len(dht.nodes) == overlay.n_peers
        assert dht.alive_count() == overlay.n_peers

    def test_leaf_sets_populated(self, dht):
        for state in dht.nodes.values():
            assert len(state.leaf_set.members()) >= 2

    def test_node_ids_unique(self, dht):
        assert len({s.node_id for s in dht.nodes.values()}) == len(dht.nodes)


class TestRouting:
    def test_routes_reach_ground_truth_responsible(self, dht):
        rng = np.random.default_rng(1)
        for _ in range(30):
            key = key_for(f"service-{rng.integers(0, 10_000)}")
            result = dht.route(key, origin_peer=int(rng.integers(0, 40)))
            assert result.responsible_node == dht.responsible_node(key)

    def test_hop_count_logarithmic(self, dht):
        rng = np.random.default_rng(2)
        hops = []
        for i in range(30):
            key = key_for(f"x{i}")
            result = dht.route(key, origin_peer=int(rng.integers(0, 40)))
            hops.append(result.hop_count)
        # 40 nodes, b=4: expect ~log16(40) ≈ 1.3 average, always small
        assert max(hops) <= 8
        assert float(np.mean(hops)) <= 4.0

    def test_latency_accumulates_positive(self, dht):
        key = key_for("svc")
        result = dht.route(key, origin_peer=0)
        if result.hop_count > 0:
            assert result.latency > 0.0
        else:
            assert result.latency == 0.0

    def test_route_from_dead_origin_rejected(self, dht):
        peer = 5
        dht.node_departed(peer)
        with pytest.raises(RoutingFailure):
            dht.route(key_for("svc"), origin_peer=peer)

    def test_messages_charged(self, dht):
        before = dht.ledger.total_count(["dht_route"])
        dht.route(key_for("another-service"), origin_peer=3)
        # zero-hop routes legitimately send nothing
        assert dht.ledger.total_count(["dht_route"]) >= before


class TestStorage:
    def test_put_then_get(self, dht):
        key = key_for("upscale")
        dht.put(key, {"peer": 3}, origin_peer=3)
        values, _ = dht.get(key, origin_peer=10)
        assert values == [{"peer": 3}]

    def test_duplicate_components_share_key(self, dht):
        key = key_for("transcode")
        for p in (1, 2, 3):
            dht.put(key, f"component-on-{p}", origin_peer=p)
        values, _ = dht.get(key, origin_peer=20)
        assert sorted(values) == ["component-on-1", "component-on-2", "component-on-3"]

    def test_get_missing_key_empty(self, dht):
        values, _ = dht.get(key_for("nothing-registered"), origin_peer=0)
        assert values == []

    def test_replication_degree(self, dht):
        key = key_for("weather")
        dht.put(key, "meta", origin_peer=0)
        holders = [nid for nid, s in dht.nodes.items() if key in s.store]
        assert len(holders) == dht.replicas + 1

    def test_remove_values(self, dht):
        key = key_for("stock")
        dht.put(key, {"cid": 1}, origin_peer=0)
        dht.put(key, {"cid": 2}, origin_peer=0)
        removed = dht.remove_values(key, lambda v: v["cid"] == 1)
        assert removed >= 1
        values, _ = dht.get(key, origin_peer=5)
        assert values == [{"cid": 2}]


class TestChurn:
    def test_departed_node_excluded_from_routing(self, dht):
        key = key_for("svc-x")
        root = dht.responsible_node(key)
        dht.node_departed(dht.peer_of(root))
        result = dht.route(key, origin_peer=self_alive_peer(dht))
        assert result.responsible_node != root
        assert result.responsible_node == dht.responsible_node(key)

    def test_data_survives_responsible_failure(self, dht):
        key = key_for("resilient-service")
        dht.put(key, "important", origin_peer=0)
        root = dht.responsible_node(key)
        dht.node_departed(dht.peer_of(root))
        values, _ = dht.get(key, origin_peer=self_alive_peer(dht))
        assert "important" in values

    def test_data_survives_cascade_of_failures(self, dht):
        key = key_for("very-resilient")
        dht.put(key, "v", origin_peer=0)
        for _ in range(dht.replicas):
            root = dht.responsible_node(key)
            dht.node_departed(dht.peer_of(root))
        values, _ = dht.get(key, origin_peer=self_alive_peer(dht))
        assert values == ["v"]

    def test_rejoin_restores_node(self, dht):
        peer = 7
        dht.node_departed(peer)
        assert dht.alive_count() == 39
        dht.node_arrived(peer)
        assert dht.alive_count() == 40
        # the rejoined node can route again
        result = dht.route(key_for("abc"), origin_peer=peer)
        assert result.responsible_node == dht.responsible_node(key_for("abc"))

    def test_rejoined_node_pulls_replicas(self, dht):
        key = key_for("replicated-fn")
        dht.put(key, "data", origin_peer=0)
        root = dht.responsible_node(key)
        peer = dht.peer_of(root)
        dht.node_departed(peer)
        dht.node_arrived(peer)
        # after rejoin + pull, the node should serve the key again when
        # it is responsible for it
        if dht.responsible_node(key) == root:
            values, _ = dht.get(key, origin_peer=peer)
            assert "data" in values

    def test_departure_idempotent(self, dht):
        dht.node_departed(3)
        count = dht.alive_count()
        dht.node_departed(3)
        assert dht.alive_count() == count

    def test_arrival_of_alive_peer_noop(self, dht):
        count = dht.alive_count()
        dht.node_arrived(3)
        assert dht.alive_count() == count


class TestJoinProtocol:
    def test_join_builds_usable_state(self, overlay):
        dht = PastryNetwork(overlay, rng=np.random.default_rng(5))
        dht.build()
        peer = 11
        dht.node_departed(peer)
        nid = dht.node_of_peer[peer]
        dht.node_arrived(peer)  # rejoin via join protocol
        state = dht.nodes[nid]
        assert len(state.known_nodes()) > 0
        # other nodes learned the rejoined node (announce step)
        learned_by = sum(1 for s in dht.nodes.values() if nid in s.known_nodes())
        assert learned_by > 0

    def test_explicit_join_rejected_when_alive(self, dht):
        with pytest.raises(RoutingFailure):
            dht.join(0)


def self_alive_peer(dht) -> int:
    for nid in dht.nodes:
        if dht.is_alive(nid):
            return dht.peer_of(nid)
    raise AssertionError("no alive peer")
