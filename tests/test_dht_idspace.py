"""Unit + property tests for the Pastry identifier space."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dht.id_space import (
    DEFAULT_B,
    ID_BITS,
    ID_SPACE,
    circular_distance,
    clockwise_distance,
    closest_id,
    digit,
    format_id,
    key_for,
    num_digits,
    random_id,
    shared_prefix_len,
)

ids = st.integers(min_value=0, max_value=ID_SPACE - 1)


class TestDigits:
    def test_num_digits_default(self):
        assert num_digits() == 32  # 128 bits / 4 bits per digit

    def test_num_digits_other_bases(self):
        assert num_digits(1) == 128
        assert num_digits(8) == 16

    def test_invalid_b_rejected(self):
        with pytest.raises(ValueError):
            num_digits(3)  # does not divide 128
        with pytest.raises(ValueError):
            num_digits(0)

    def test_digit_extraction_known_value(self):
        nid = 0xABC << (ID_BITS - 12)  # top three hex digits = a, b, c
        assert digit(nid, 0) == 0xA
        assert digit(nid, 1) == 0xB
        assert digit(nid, 2) == 0xC
        assert digit(nid, 3) == 0x0

    def test_digit_index_bounds(self):
        with pytest.raises(IndexError):
            digit(0, 32)
        with pytest.raises(IndexError):
            digit(0, -1)

    @given(ids)
    @settings(max_examples=50, deadline=None)
    def test_digits_reassemble_id(self, nid):
        digits = [digit(nid, i) for i in range(num_digits())]
        rebuilt = 0
        for d in digits:
            rebuilt = (rebuilt << DEFAULT_B) | d
        assert rebuilt == nid


class TestSharedPrefix:
    def test_identical_ids_full_length(self):
        assert shared_prefix_len(5, 5) == num_digits()

    def test_differ_in_first_digit(self):
        a = 0x1 << (ID_BITS - 4)
        b = 0x2 << (ID_BITS - 4)
        assert shared_prefix_len(a, b) == 0

    def test_differ_in_third_digit(self):
        a = 0xAB1 << (ID_BITS - 12)
        b = 0xAB2 << (ID_BITS - 12)
        assert shared_prefix_len(a, b) == 2

    @given(ids, ids)
    @settings(max_examples=50, deadline=None)
    def test_prefix_symmetry_and_digit_consistency(self, a, b):
        n = shared_prefix_len(a, b)
        assert n == shared_prefix_len(b, a)
        for i in range(n):
            assert digit(a, i) == digit(b, i)
        if n < num_digits():
            assert digit(a, n) != digit(b, n)


class TestDistances:
    def test_circular_distance_symmetric(self):
        assert circular_distance(10, ID_SPACE - 10) == 20

    def test_circular_shorter_way(self):
        assert circular_distance(0, ID_SPACE // 2 + 1) == ID_SPACE // 2 - 1

    def test_clockwise(self):
        assert clockwise_distance(ID_SPACE - 5, 5) == 10
        assert clockwise_distance(5, ID_SPACE - 5) == ID_SPACE - 10

    @given(ids, ids)
    @settings(max_examples=50, deadline=None)
    def test_circular_is_min_of_clockwise(self, a, b):
        assert circular_distance(a, b) == min(
            clockwise_distance(a, b), clockwise_distance(b, a)
        )
        assert circular_distance(a, b) == circular_distance(b, a)

    @given(ids, ids, ids)
    @settings(max_examples=50, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        assert circular_distance(a, c) <= circular_distance(a, b) + circular_distance(b, c)


class TestKeys:
    def test_key_stable(self):
        assert key_for("transcode") == key_for("transcode")

    def test_key_in_range(self):
        assert 0 <= key_for("anything") < ID_SPACE

    def test_distinct_names_distinct_keys(self):
        names = [f"F{i:03d}" for i in range(200)]
        keys = {key_for(n) for n in names}
        assert len(keys) == 200

    def test_random_id_range_and_determinism(self):
        r1 = random_id(np.random.default_rng(0))
        r2 = random_id(np.random.default_rng(0))
        assert r1 == r2
        assert 0 <= r1 < ID_SPACE


class TestClosestId:
    def test_picks_nearest(self):
        assert closest_id(100, [50, 90, 200]) == 90

    def test_wraparound(self):
        assert closest_id(ID_SPACE - 1, [0, ID_SPACE // 2]) == 0

    def test_tie_breaks_to_smaller(self):
        assert closest_id(100, [90, 110]) == 90

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            closest_id(1, [])

    @given(ids, st.lists(ids, min_size=1, max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_result_minimises_distance(self, key, cands):
        best = closest_id(key, cands)
        assert circular_distance(key, best) == min(
            circular_distance(key, c) for c in cands
        )


class TestFormat:
    def test_prefix_length(self):
        s = format_id(0, prefix_digits=8)
        assert s.startswith("00000000")

    def test_full_length_no_ellipsis(self):
        s = format_id(0, prefix_digits=32)
        assert "…" not in s and len(s) == 32
