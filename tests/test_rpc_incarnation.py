"""Regression: the RPC reply cache must not survive an endpoint restart.

Message ids restart from 1 whenever an ``RpcEndpoint`` is recreated, so
a reply cache keyed only on ``(src, msg_id)`` serves a reborn peer the
replies recorded for its *previous* life — the restarted peer's first
calls get stale payloads without its handler ever running.  The fix
namespaces cache keys by a per-process incarnation nonce carried in the
request envelope, and additionally ages entries out after ``reply_ttl``
seconds.  (Both tests fail on the pre-fix endpoint: the first serves a
stale ``seq``, the second never re-invokes the handler.)
"""

import asyncio

from repro.net import codec
from repro.net.rpc import RpcEndpoint
from repro.net.transport import LoopbackTransport


def test_restarted_endpoint_does_not_receive_stale_cached_replies():
    async def scenario():
        t = LoopbackTransport()
        served = []

        async def handler(src, msg):
            served.append(msg.seq)
            return {"seq": msg.seq}

        b = RpcEndpoint(t, 1)
        b.on(codec.MaintenancePing, handler)
        a1 = RpcEndpoint(t, 0)
        await t.start()
        first = await a1.call(1, codec.MaintenancePing(7, 1))

        # peer 0 restarts: new endpoint, msg_id counter back at 1
        t.unregister(0)
        a2 = RpcEndpoint(t, 0)
        await t.start()
        second = await a2.call(1, codec.MaintenancePing(7, 2))

        await t.close()
        return first, second, served

    first, second, served = asyncio.run(scenario())
    assert first == {"seq": 1}
    # pre-fix this was the cached {"seq": 1} and served == [1]
    assert second == {"seq": 2}
    assert served == [1, 2]


def test_reply_cache_entries_expire_after_ttl():
    async def scenario():
        t = LoopbackTransport()
        now = [0.0]
        served = []

        async def handler(src, msg):
            served.append(msg.seq)
            return {"seq": msg.seq}

        b = RpcEndpoint(t, 1, reply_ttl=5.0, clock=lambda: now[0])
        b.on(codec.MaintenancePing, handler)
        a = RpcEndpoint(t, 0)
        await t.start()

        envelope = {
            "kind": "req", "id": 9, "src": 0, "dst": 1,
            "inc": a.incarnation, "body": codec.MaintenancePing(7, 1),
        }
        await b._on_envelope(dict(envelope))
        await b._on_envelope(dict(envelope))  # dedup: handler ran once
        assert served == [1]

        now[0] = 6.0  # past the TTL: the cached reply has aged out
        await b._on_envelope(dict(envelope))
        await t.close()
        return served

    served = asyncio.run(scenario())
    assert served == [1, 1]


def test_responses_from_a_previous_incarnation_are_dropped():
    async def scenario():
        t = LoopbackTransport()
        a = RpcEndpoint(t, 0)
        await t.start()
        loop = asyncio.get_running_loop()
        future = loop.create_future()
        a._pending[1] = future

        stale = {"kind": "res", "id": 1, "src": 1, "dst": 0,
                 "inc": "someone-elses-life", "body": {"seq": 99}}
        await a._on_envelope(stale)
        dropped = not future.done()

        fresh = {"kind": "res", "id": 1, "src": 1, "dst": 0,
                 "inc": a.incarnation, "body": {"seq": 1}}
        await a._on_envelope(fresh)
        resolved = future.done() and future.result() == {"seq": 1}
        await t.close()
        return dropped, resolved

    dropped, resolved = asyncio.run(scenario())
    assert dropped
    assert resolved
