"""Tests for the adaptive probing-budget policy (§4.1 Step 1)."""

import pytest

from repro.core.bcp import CompositionResult
from repro.core.budget import AdaptiveBudgetPolicy, BudgetPolicyConfig
from repro.core.function_graph import FunctionGraph
from repro.core.qos import QoSRequirement
from repro.core.request import CompositeRequest
from repro.core.selection import CandidateGraph


def request(k=2, priority=1.0, delay_bound=1.0):
    return CompositeRequest.create(
        function_graph=FunctionGraph.linear([f"f{i}" for i in range(k)]),
        qos=QoSRequirement({"delay": delay_bound}),
        source_peer=0,
        dest_peer=1,
        priority=priority,
    )


def outcome(success=True, n_qualified=3):
    result = CompositionResult(request=request(), success=success)
    result.qualified = [None] * n_qualified  # only the length is consulted
    return result


class TestConfigValidation:
    def test_bad_bounds_rejected(self):
        with pytest.raises(ValueError):
            BudgetPolicyConfig(base=0)
        with pytest.raises(ValueError):
            BudgetPolicyConfig(min_budget=10, max_budget=5)
        with pytest.raises(ValueError):
            BudgetPolicyConfig(complexity_base=0.5)
        with pytest.raises(ValueError):
            BudgetPolicyConfig(target_success=0.0)
        with pytest.raises(ValueError):
            BudgetPolicyConfig(adjust_step=1.0)
        with pytest.raises(ValueError):
            BudgetPolicyConfig(multiplier_range=(2.0, 4.0))


class TestBudgetSignals:
    def test_reference_request_gets_base(self):
        policy = AdaptiveBudgetPolicy(BudgetPolicyConfig(base=8))
        assert policy.budget_for(request(k=2)) == 8

    def test_priority_scales_linearly(self):
        policy = AdaptiveBudgetPolicy(BudgetPolicyConfig(base=8))
        assert policy.budget_for(request(priority=2.0)) == 16

    def test_complexity_grows_budget(self):
        policy = AdaptiveBudgetPolicy(BudgetPolicyConfig(base=8, complexity_base=2.0))
        assert policy.budget_for(request(k=2)) == 8
        assert policy.budget_for(request(k=3)) == 16
        assert policy.budget_for(request(k=4)) == 32

    def test_strict_qos_boost(self):
        cfg = BudgetPolicyConfig(base=8, strict_delay_bound=0.25, strictness_boost=2.0)
        policy = AdaptiveBudgetPolicy(cfg)
        assert policy.budget_for(request(delay_bound=0.1)) == 16
        assert policy.budget_for(request(delay_bound=1.0)) == 8

    def test_clipped_to_bounds(self):
        cfg = BudgetPolicyConfig(base=8, min_budget=4, max_budget=20)
        policy = AdaptiveBudgetPolicy(cfg)
        assert policy.budget_for(request(k=6)) == 20  # complexity would explode
        policy.multiplier = 0.01
        assert policy.budget_for(request()) == 4


class TestFeedbackController:
    def test_low_success_raises_multiplier(self):
        cfg = BudgetPolicyConfig(window=5, target_success=0.9)
        policy = AdaptiveBudgetPolicy(cfg)
        for _ in range(5):
            policy.record_outcome(outcome(success=False))
        assert policy.multiplier > 1.0

    def test_surplus_success_lowers_multiplier(self):
        cfg = BudgetPolicyConfig(window=5, surplus_qualified=4)
        policy = AdaptiveBudgetPolicy(cfg)
        for _ in range(5):
            policy.record_outcome(outcome(success=True, n_qualified=10))
        assert policy.multiplier < 1.0

    def test_comfortable_regime_stays_put(self):
        cfg = BudgetPolicyConfig(window=5, surplus_qualified=8)
        policy = AdaptiveBudgetPolicy(cfg)
        for _ in range(5):
            policy.record_outcome(outcome(success=True, n_qualified=3))
        assert policy.multiplier == 1.0

    def test_multiplier_bounded(self):
        cfg = BudgetPolicyConfig(window=2, multiplier_range=(0.5, 2.0))
        policy = AdaptiveBudgetPolicy(cfg)
        for _ in range(20):
            policy.record_outcome(outcome(success=False))
        assert policy.multiplier == 2.0

    def test_no_action_before_window_fills(self):
        policy = AdaptiveBudgetPolicy(BudgetPolicyConfig(window=10))
        for _ in range(9):
            policy.record_outcome(outcome(success=False))
        assert policy.multiplier == 1.0

    def test_recent_success_rate(self):
        policy = AdaptiveBudgetPolicy(BudgetPolicyConfig(window=10))
        policy.record_outcome(outcome(success=True))
        policy.record_outcome(outcome(success=False))
        assert policy.recent_success_rate == 0.5


class TestEndToEnd:
    def test_controller_recovers_success_under_tightness(self):
        """Against a real world: tight QoS fails at tiny budgets; the
        controller grows the budget until requests succeed again."""
        from repro.core.bcp import BCPConfig
        from worlds import MicroWorld

        world = MicroWorld(config=BCPConfig())
        for p in range(2, 7):
            world.place("fa", peer=p, delay=0.002)
            world.place("fb", peer=p, delay=0.002)
        policy = AdaptiveBudgetPolicy(
            BudgetPolicyConfig(base=2, window=5, max_budget=64)
        )
        fg = FunctionGraph.linear(["fa", "fb"])
        successes_early, successes_late = 0, 0
        for i in range(40):
            req = world.request(fg, source=0, dest=7, delay_bound=0.16)
            budget = policy.budget_for(req)
            result = world.bcp.compose(req, budget=budget, confirm=False)
            policy.record_outcome(result)
            if i < 10:
                successes_early += int(result.success)
            if i >= 30:
                successes_late += int(result.success)
        assert policy.multiplier >= 1.0
        assert successes_late >= successes_early
