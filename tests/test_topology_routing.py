"""Unit tests for IP-layer and overlay-layer shortest-path routing."""

import networkx as nx
import numpy as np
import pytest

from repro.topology.inet import generate_ip_network
from repro.topology.routing import IPRouter, OverlayRouter, graph_to_sparse


@pytest.fixture(scope="module")
def ip():
    return generate_ip_network(120, rng=np.random.default_rng(21))


@pytest.fixture(scope="module")
def ip_router(ip):
    return IPRouter(ip)


def small_weighted_graph():
    g = nx.Graph()
    g.add_edge(0, 1, delay=1.0, bandwidth=10.0)
    g.add_edge(1, 2, delay=1.0, bandwidth=5.0)
    g.add_edge(0, 2, delay=5.0, bandwidth=100.0)
    g.add_edge(2, 3, delay=1.0, bandwidth=20.0)
    return g


class TestGraphToSparse:
    def test_round_trip_weights(self):
        g = small_weighted_graph()
        m, nodes = graph_to_sparse(g, "delay")
        assert m.shape == (4, 4)
        assert m[0, 1] == 1.0 and m[1, 0] == 1.0
        assert m[0, 2] == 5.0

    def test_nodelist_subset(self):
        g = small_weighted_graph()
        m, nodes = graph_to_sparse(g, "delay", nodelist=[0, 1])
        assert m.shape == (2, 2)
        assert m[0, 1] == 1.0


class TestIPRouter:
    def test_matches_networkx_dijkstra(self, ip, ip_router):
        lengths = nx.single_source_dijkstra_path_length(ip, 0, weight="delay")
        for node in list(ip.nodes)[:20]:
            assert ip_router.delay(0, node) == pytest.approx(lengths[node])

    def test_path_endpoints_and_continuity(self, ip, ip_router):
        path = ip_router.path(0, 50)
        assert path[0] == 0 and path[-1] == 50
        for a, b in zip(path, path[1:]):
            assert ip.has_edge(a, b)

    def test_path_delay_consistent(self, ip, ip_router):
        path = ip_router.path(0, 50)
        total = sum(ip.edges[a, b]["delay"] for a, b in zip(path, path[1:]))
        assert ip_router.delay(0, 50) == pytest.approx(total)

    def test_self_path(self, ip_router):
        assert ip_router.path(5, 5) == [5]
        assert ip_router.delay(5, 5) == 0.0

    def test_path_bandwidth_is_bottleneck(self):
        router = IPRouter(small_weighted_graph())
        # shortest delay 0->2 goes through 1 (delay 2 < 5)
        assert router.path(0, 2) == [0, 1, 2]
        assert router.path_bandwidth(0, 2) == 5.0

    def test_self_bandwidth_infinite(self):
        router = IPRouter(small_weighted_graph())
        assert router.path_bandwidth(1, 1) == float("inf")

    def test_unknown_router_raises(self, ip_router):
        with pytest.raises(KeyError):
            ip_router.delays_from(10_000)

    def test_cache_consistency(self, ip_router):
        d1 = ip_router.delay(3, 40)
        d2 = ip_router.delay(3, 40)
        assert d1 == d2


class TestOverlayRouter:
    def test_matches_networkx(self):
        g = small_weighted_graph()
        router = OverlayRouter(g)
        for a in g.nodes:
            lengths = nx.single_source_dijkstra_path_length(g, a, weight="delay")
            for b in g.nodes:
                assert router.delay(a, b) == pytest.approx(lengths[b])

    def test_path_and_links(self):
        router = OverlayRouter(small_weighted_graph())
        assert router.path(0, 3) == [0, 1, 2, 3]
        assert router.links(0, 3) == [(0, 1), (1, 2), (2, 3)]

    def test_links_canonical_order(self):
        router = OverlayRouter(small_weighted_graph())
        for u, v in router.links(3, 0):
            assert u < v

    def test_self_path(self):
        router = OverlayRouter(small_weighted_graph())
        assert router.path(2, 2) == [2]
        assert router.links(2, 2) == []

    def test_no_path_raises(self):
        g = small_weighted_graph()
        g.add_node(99)  # isolated
        router = OverlayRouter(g)
        assert not router.reachable(0, 99)
        with pytest.raises(nx.NetworkXNoPath):
            router.path(0, 99)

    def test_unknown_peer_raises(self):
        router = OverlayRouter(small_weighted_graph())
        with pytest.raises(KeyError):
            router.delay(0, 1234)

    def test_delay_matrix_copy(self):
        router = OverlayRouter(small_weighted_graph())
        m = router.delay_matrix()
        m[0, 1] = -99.0
        assert router.delay(0, 1) == 1.0  # internal state untouched

    def test_peers_property(self):
        router = OverlayRouter(small_weighted_graph())
        assert sorted(router.peers) == [0, 1, 2, 3]
