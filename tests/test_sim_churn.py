"""Unit tests for peer churn processes."""

import numpy as np
import pytest

from repro.sim.churn import ChurnProcess, ExponentialChurn
from repro.sim.engine import Simulator
from repro.sim.network import MessageNetwork


class Stub:
    def __init__(self, node_id):
        self.node_id = node_id

    def on_message(self, msg):
        pass


def make_world(n=50, seed=0):
    sim = Simulator()
    net = MessageNetwork(sim, latency_fn=lambda a, b: 0.01)
    for i in range(n):
        net.register(Stub(i))
    return sim, net


class TestChurnProcess:
    def test_expected_failure_count(self):
        sim, net = make_world(n=200)
        churn = ChurnProcess(sim, net, fail_fraction=0.05, revive=False, rng=np.random.default_rng(0))
        churn.start()
        sim.run(until=10.0)
        # E[failures] over 10 ticks of 200 peers (shrinking pool) ~ 80;
        # loose band to stay seed-robust
        assert 40 <= churn.failures <= 130

    def test_zero_fraction_never_fails(self):
        sim, net = make_world()
        churn = ChurnProcess(sim, net, fail_fraction=0.0, rng=np.random.default_rng(0))
        churn.start()
        sim.run(until=20.0)
        assert churn.failures == 0

    def test_bad_fraction_rejected(self):
        sim, net = make_world()
        with pytest.raises(ValueError):
            ChurnProcess(sim, net, fail_fraction=1.5)

    def test_departure_listener_called_with_time(self):
        sim, net = make_world()
        churn = ChurnProcess(
            sim, net, fail_fraction=0.0, revive=False, rng=np.random.default_rng(0)
        )
        events = []
        churn.on_departure(lambda nid, t: events.append((nid, t)))
        sim.schedule(3.0, churn.fail, 7)
        sim.run()
        assert events == [(7, 3.0)]
        assert not net.is_alive(7)

    def test_revival_restores_liveness_and_notifies(self):
        sim, net = make_world()
        churn = ChurnProcess(
            sim, net, fail_fraction=0.0, revive=True, downtime=5.0, rng=np.random.default_rng(0)
        )
        arrivals = []
        churn.on_arrival(lambda nid, t: arrivals.append((nid, t)))
        churn.fail(3)
        sim.run()
        assert net.is_alive(3)
        assert arrivals == [(3, 5.0)]
        assert churn.revivals == 1

    def test_no_revive_mode(self):
        sim, net = make_world()
        churn = ChurnProcess(sim, net, fail_fraction=0.0, revive=False, rng=np.random.default_rng(0))
        churn.fail(3)
        sim.run(until=100.0)
        assert not net.is_alive(3)

    def test_protected_peers_never_fail(self):
        sim, net = make_world(n=20)
        churn = ChurnProcess(
            sim, net, fail_fraction=1.0, revive=False,
            rng=np.random.default_rng(0), protected={0, 1},
        )
        churn.start()
        sim.run(until=2.0)
        assert net.is_alive(0) and net.is_alive(1)
        assert churn.failures == 18

    def test_fail_is_idempotent_on_dead_peer(self):
        sim, net = make_world()
        churn = ChurnProcess(sim, net, fail_fraction=0.0, rng=np.random.default_rng(0))
        churn.fail(2)
        churn.fail(2)
        assert churn.failures == 1

    def test_stop_halts_ticks(self):
        sim, net = make_world()
        churn = ChurnProcess(sim, net, fail_fraction=1.0, revive=False, rng=np.random.default_rng(0))
        churn.start()
        sim.run(until=1.0)
        churn.stop()
        failed_so_far = churn.failures
        sim.run(until=10.0)
        assert churn.failures == failed_so_far

    def test_double_start_rejected(self):
        sim, net = make_world()
        churn = ChurnProcess(sim, net, rng=np.random.default_rng(0))
        churn.start()
        with pytest.raises(RuntimeError):
            churn.start()


class TestExponentialChurn:
    def test_failures_occur_and_revive(self):
        sim, net = make_world(n=30)
        churn = ExponentialChurn(
            sim, net, mean_lifetime=5.0, mean_downtime=1.0, rng=np.random.default_rng(1)
        )
        departures = []
        churn.on_departure(lambda nid, t: departures.append(nid))
        churn.start()
        sim.run(until=20.0)
        assert churn.failures > 0
        assert len(departures) == churn.failures

    def test_protected_exempt(self):
        sim, net = make_world(n=10)
        churn = ExponentialChurn(
            sim, net, mean_lifetime=0.5, rng=np.random.default_rng(1), protected=set(range(10))
        )
        churn.start()
        sim.run(until=10.0)
        assert churn.failures == 0

    def test_bad_lifetime_rejected(self):
        sim, net = make_world()
        with pytest.raises(ValueError):
            ExponentialChurn(sim, net, mean_lifetime=0.0)
