"""Unit tests for probe message mechanics."""

import pytest

from repro.core.function_graph import FunctionGraph
from repro.core.probe import Probe
from repro.core.qos import QoSRequirement, QoSVector
from repro.core.request import CompositeRequest
from repro.core.resources import ResourceVector
from repro.discovery.metadata import ServiceMetadata
from repro.services.component import QualitySpec


def meta(cid, fn, peer, bw_factor=1.0):
    return ServiceMetadata(
        component_id=cid,
        function=fn,
        peer=peer,
        qp=QoSVector({"delay": 0.01, "loss": 0.0}),
        resources=ResourceVector({"cpu": 1.0}),
        input_quality=QualitySpec(),
        output_quality=QualitySpec(),
        bandwidth_factor=bw_factor,
    )


@pytest.fixture
def request_obj():
    return CompositeRequest.create(
        function_graph=FunctionGraph.linear(["a", "b"]),
        qos=QoSRequirement({"delay": 1.0, "loss": 0.1}),
        source_peer=0,
        dest_peer=9,
        bandwidth=2.0,
    )


class TestInitialProbe:
    def test_initial_state(self, request_obj):
        p = Probe.initial(request_obj, budget=16)
        assert p.current_peer == 0
        assert p.branch == ()
        assert p.current_function is None
        assert p.budget == 16
        assert p.out_bandwidth == 2.0
        assert p.qos.get("delay") == 0.0
        assert not p.at_sink

    def test_negative_budget_rejected(self, request_obj):
        with pytest.raises(ValueError):
            Probe.initial(request_obj, budget=-1)


class TestSpawn:
    def test_spawn_advances_branch_and_peer(self, request_obj):
        root = Probe.initial(request_obj, 16)
        m = meta(1, "a", peer=3)
        child = root.spawn(
            "a", m, root.graph, root.applied_swaps,
            QoSVector({"delay": 0.05, "loss": 0.0}), budget=4, elapsed=0.1,
        )
        assert child.branch == ("a",)
        assert child.current_peer == 3
        assert child.current_function == "a"
        assert child.budget == 4
        assert child.hops == 1
        assert child.assignment["a"].component_id == 1
        assert child.probe_id != root.probe_id

    def test_bandwidth_factor_compounds(self, request_obj):
        root = Probe.initial(request_obj, 16)
        child = root.spawn(
            "a", meta(1, "a", 3, bw_factor=0.5), root.graph, root.applied_swaps,
            QoSVector({"delay": 0.0, "loss": 0.0}), 4, 0.0,
        )
        assert child.out_bandwidth == pytest.approx(1.0)

    def test_parent_assignment_not_mutated(self, request_obj):
        root = Probe.initial(request_obj, 16)
        root.spawn(
            "a", meta(1, "a", 3), root.graph, root.applied_swaps,
            QoSVector({"delay": 0.0, "loss": 0.0}), 4, 0.0,
        )
        assert root.assignment == {}

    def test_at_sink_after_last_function(self, request_obj):
        root = Probe.initial(request_obj, 16)
        a = root.spawn("a", meta(1, "a", 3), root.graph, root.applied_swaps,
                       QoSVector({"delay": 0, "loss": 0}), 4, 0.0)
        assert not a.at_sink
        b = a.spawn("b", meta(2, "b", 4), a.graph, a.applied_swaps,
                    QoSVector({"delay": 0, "loss": 0}), 2, 0.0)
        assert b.at_sink
        assert b.last_component().component_id == 2


class TestArrival:
    def test_arrived_moves_to_destination(self, request_obj):
        root = Probe.initial(request_obj, 16)
        a = root.spawn("a", meta(1, "a", 3), root.graph, root.applied_swaps,
                       QoSVector({"delay": 0, "loss": 0}), 4, 0.0)
        done = a.arrived(QoSVector({"delay": 0.2, "loss": 0.0}), elapsed=0.5)
        assert done.current_peer == 9
        assert done.qos.get("delay") == 0.2
        assert done.elapsed == 0.5
        assert done.branch == ("a",)  # branch unchanged by the final hop
