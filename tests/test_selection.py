"""Unit tests for destination-side merging, selection, and admission."""

import math

import pytest

from repro.core.function_graph import FunctionGraph
from repro.core.probe import Probe
from repro.core.qos import QoSRequirement, QoSVector
from repro.core.request import CompositeRequest
from repro.core.resources import ResourcePool, ResourceVector
from repro.core.selection import (
    CandidateGraph,
    admit_graph,
    merge_probes,
    select_composition,
)
from repro.core.service_graph import ServiceGraph
from repro.discovery.metadata import ServiceMetadata
from repro.services.component import QualitySpec

from worlds import micro_overlay


def meta(cid, fn, peer):
    return ServiceMetadata(
        component_id=cid,
        function=fn,
        peer=peer,
        qp=QoSVector({"delay": 0.01, "loss": 0.0}),
        resources=ResourceVector({"cpu": 10.0, "memory": 20.0}),
        input_quality=QualitySpec(),
        output_quality=QualitySpec(),
    )


def diamond():
    return FunctionGraph.from_edges(
        ["fa", "fb", "fc", "fd"],
        [("fa", "fb"), ("fa", "fc"), ("fb", "fd"), ("fc", "fd")],
    )


def make_request(fg, overlay):
    return CompositeRequest.create(
        function_graph=fg,
        qos=QoSRequirement({"delay": 10.0, "loss": 1.0}),
        source_peer=0,
        dest_peer=7,
    )


def branch_probe(request, branch, assignment, elapsed=0.1):
    """A probe that 'arrived' having traversed the given branch."""
    return Probe(
        probe_id=0,
        request=request,
        graph=request.function_graph,
        applied_swaps=frozenset(),
        assignment=assignment,
        branch=branch,
        current_peer=request.dest_peer,
        qos=QoSVector({"delay": 0.1, "loss": 0.0}),
        budget=1,
        out_bandwidth=request.bandwidth,
        elapsed=elapsed,
    )


@pytest.fixture(scope="module")
def mov():
    return micro_overlay(8)


class TestMergeLinear:
    def test_single_branch_probes_become_candidates(self, mov):
        fg = FunctionGraph.linear(["fa", "fb"])
        request = make_request(fg, mov)
        a1, b1 = meta(1, "fa", 2), meta(2, "fb", 3)
        a2, b2 = meta(3, "fa", 4), meta(4, "fb", 5)
        probes = [
            branch_probe(request, ("fa", "fb"), {"fa": a1, "fb": b1}),
            branch_probe(request, ("fa", "fb"), {"fa": a2, "fb": b2}),
        ]
        cands = merge_probes(request, probes, mov)
        assert len(cands) == 2

    def test_duplicate_assignments_deduped(self, mov):
        fg = FunctionGraph.linear(["fa"])
        request = make_request(fg, mov)
        a = meta(1, "fa", 2)
        probes = [
            branch_probe(request, ("fa",), {"fa": a}, elapsed=0.1),
            branch_probe(request, ("fa",), {"fa": a}, elapsed=0.2),
        ]
        cands = merge_probes(request, probes, mov)
        assert len(cands) == 1


class TestMergeDag:
    def test_compatible_branches_merge(self, mov):
        fg = diamond()
        request = make_request(fg, mov)
        fa, fb, fc, fd = meta(1, "fa", 2), meta(2, "fb", 3), meta(3, "fc", 4), meta(4, "fd", 5)
        probes = [
            branch_probe(request, ("fa", "fb", "fd"), {"fa": fa, "fb": fb, "fd": fd}),
            branch_probe(request, ("fa", "fc", "fd"), {"fa": fa, "fc": fc, "fd": fd}),
        ]
        cands = merge_probes(request, probes, mov)
        assert len(cands) == 1
        assert set(cands[0].graph.assignment) == {"fa", "fb", "fc", "fd"}

    def test_incompatible_shared_function_not_merged(self, mov):
        fg = diamond()
        request = make_request(fg, mov)
        fa1, fa2 = meta(1, "fa", 2), meta(9, "fa", 6)
        fb, fc, fd = meta(2, "fb", 3), meta(3, "fc", 4), meta(4, "fd", 5)
        probes = [
            branch_probe(request, ("fa", "fb", "fd"), {"fa": fa1, "fb": fb, "fd": fd}),
            branch_probe(request, ("fa", "fc", "fd"), {"fa": fa2, "fc": fc, "fd": fd}),
        ]
        assert merge_probes(request, probes, mov) == []

    def test_missing_branch_yields_nothing(self, mov):
        fg = diamond()
        request = make_request(fg, mov)
        fa, fb, fd = meta(1, "fa", 2), meta(2, "fb", 3), meta(4, "fd", 5)
        probes = [
            branch_probe(request, ("fa", "fb", "fd"), {"fa": fa, "fb": fb, "fd": fd}),
        ]
        assert merge_probes(request, probes, mov) == []

    def test_merge_elapsed_is_max_of_contributors(self, mov):
        fg = diamond()
        request = make_request(fg, mov)
        fa, fb, fc, fd = meta(1, "fa", 2), meta(2, "fb", 3), meta(3, "fc", 4), meta(4, "fd", 5)
        probes = [
            branch_probe(request, ("fa", "fb", "fd"), {"fa": fa, "fb": fb, "fd": fd}, elapsed=0.2),
            branch_probe(request, ("fa", "fc", "fd"), {"fa": fa, "fc": fc, "fd": fd}, elapsed=0.7),
        ]
        cands = merge_probes(request, probes, mov)
        assert cands[0].arrival_elapsed == pytest.approx(0.7)

    def test_cross_product_capped(self, mov):
        fg = diamond()
        request = make_request(fg, mov)
        fa, fd = meta(1, "fa", 2), meta(4, "fd", 5)
        probes = []
        for i in range(5):
            probes.append(branch_probe(request, ("fa", "fb", "fd"),
                                       {"fa": fa, "fb": meta(10 + i, "fb", 3), "fd": fd}))
            probes.append(branch_probe(request, ("fa", "fc", "fd"),
                                       {"fa": fa, "fc": meta(20 + i, "fc", 4), "fd": fd}))
        cands = merge_probes(request, probes, mov, max_candidates=6)
        assert len(cands) <= 6


class TestSelectComposition:
    def make_candidates(self, mov, delays):
        fg = FunctionGraph.linear(["fa"])
        cands = []
        for i, d in enumerate(delays):
            graph = ServiceGraph(
                fg, {"fa": meta(i + 1, "fa", 2 + i)}, source_peer=0, dest_peer=7
            )
            cands.append(
                CandidateGraph(graph=graph, qos=QoSVector({"delay": d, "loss": 0.0}))
            )
        return cands

    def pool(self, mov, cpu=100.0):
        caps = {p: ResourceVector({"cpu": cpu, "memory": 100.0}) for p in mov.peers()}
        return ResourcePool(mov, caps)

    def test_filters_unqualified(self, mov):
        cands = self.make_candidates(mov, [0.5, 2.0])
        outcome = select_composition(
            cands, QoSRequirement({"delay": 1.0}), self.pool(mov)
        )
        assert len(outcome.qualified) == 1
        assert outcome.best.qos.get("delay") == 0.5

    def test_no_qualified_best_none(self, mov):
        cands = self.make_candidates(mov, [2.0, 3.0])
        outcome = select_composition(
            cands, QoSRequirement({"delay": 1.0}), self.pool(mov)
        )
        assert outcome.best is None and outcome.qualified == []
        assert outcome.n_candidates == 2  # both were considered, none qualified

    def test_objective_delay_ranks_by_delay(self, mov):
        cands = self.make_candidates(mov, [0.9, 0.2, 0.5])
        outcome = select_composition(
            cands, QoSRequirement({"delay": 1.0}), self.pool(mov), objective="delay"
        )
        assert outcome.best.qos.get("delay") == 0.2
        delays = [c.qos.get("delay") for c in outcome.qualified]
        assert delays == sorted(delays)

    def test_objective_cost_ranks_by_psi(self, mov):
        pool = self.pool(mov)
        # load peer 2 so the candidate on it becomes expensive
        pool.soft_allocate_peer("hog", 2, ResourceVector({"cpu": 85.0}))
        cands = self.make_candidates(mov, [0.5, 0.5])
        outcome = select_composition(cands, QoSRequirement({"delay": 1.0}), pool)
        assert outcome.best.graph.component("fa").peer == 3
        costs = [c.cost for c in outcome.qualified]
        assert costs == sorted(costs)

    def test_unknown_objective_rejected(self, mov):
        with pytest.raises(ValueError):
            select_composition([], QoSRequirement({}), self.pool(mov), objective="magic")

    def test_exhausted_host_filtered_despite_qos(self, mov):
        pool = self.pool(mov)
        pool.soft_allocate_peer("hog", 2, ResourceVector({"cpu": 100.0}))
        cands = self.make_candidates(mov, [0.1])
        outcome = select_composition(cands, QoSRequirement({"delay": 1.0}), pool)
        assert outcome.best is None


class TestAdmitGraph:
    def test_admit_reserves_everything(self, mov):
        caps = {p: ResourceVector({"cpu": 50.0, "memory": 100.0}) for p in mov.peers()}
        pool = ResourcePool(mov, caps)
        fg = FunctionGraph.linear(["fa", "fb"])
        graph = ServiceGraph(
            fg, {"fa": meta(1, "fa", 2), "fb": meta(2, "fb", 3)},
            source_peer=0, dest_peer=7, base_bandwidth=1.0,
        )
        assert admit_graph(graph, pool, token="s1")
        assert pool.available(2).get("cpu") == 40.0
        assert pool.available(3).get("cpu") == 40.0
        pool.release("s1")
        assert pool.available(2).get("cpu") == 50.0

    def test_admit_all_or_nothing(self, mov):
        caps = {p: ResourceVector({"cpu": 15.0, "memory": 100.0}) for p in mov.peers()}
        pool = ResourcePool(mov, caps)
        fg = FunctionGraph.linear(["fa", "fb"])
        # both components on peer 2: second does not fit -> rollback
        graph = ServiceGraph(
            fg, {"fa": meta(1, "fa", 2), "fb": meta(2, "fb", 2)},
            source_peer=0, dest_peer=7,
        )
        assert not admit_graph(graph, pool, token="s1")
        assert pool.available(2).get("cpu") == 15.0
        assert not pool.has_token("s1")

    def test_admit_fails_on_bandwidth(self, mov):
        caps = {p: ResourceVector({"cpu": 100.0, "memory": 100.0}) for p in mov.peers()}
        pool = ResourcePool(mov, caps)
        fg = FunctionGraph.linear(["fa"])
        graph = ServiceGraph(
            fg, {"fa": meta(1, "fa", 2)}, source_peer=0, dest_peer=7,
            base_bandwidth=99.0,  # links carry 10
        )
        assert not admit_graph(graph, pool, token="s1")
        pool.check_invariants()
