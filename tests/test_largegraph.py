"""The large-graph workload generator (`repro.workload.largegraph`).

The generator's contract: valid DAGs (no isolated functions, no
cycles), a *hard* source→sink path-count cap (branch enumeration is
what every composition algorithm here pays for), determinism under a
seed, and worlds that are resource-feasible by construction.
"""

import pytest

from repro.workload.largegraph import (
    LargeGraphConfig,
    generate_large_graph,
    largegraph_population,
    largegraph_request,
    largegraph_world,
)

KINDS = ("layered", "series-parallel", "random")


class TestGeneration:
    @pytest.mark.parametrize("kind", KINDS)
    @pytest.mark.parametrize("n", [2, 5, 20, 80])
    def test_valid_dag_of_requested_size(self, kind, n):
        cfg = LargeGraphConfig(kind=kind, n_functions=n, seed=7)
        graph = generate_large_graph(cfg)  # validate() runs in from_edges
        assert len(graph.functions) == n
        assert len(set(graph.functions)) == n
        assert all(fn.startswith("G") for fn in graph.functions)

    @pytest.mark.parametrize("kind", KINDS)
    def test_branch_count_capped(self, kind):
        cfg = LargeGraphConfig(kind=kind, n_functions=120, branching=4, seed=3)
        graph = generate_large_graph(cfg)
        assert len(graph.branches()) <= cfg.max_branches

    def test_tighter_cap_is_respected(self):
        cfg = LargeGraphConfig(kind="random", n_functions=60, max_branches=4, seed=1)
        assert len(generate_large_graph(cfg).branches()) <= 4

    @pytest.mark.parametrize("kind", KINDS)
    def test_deterministic_under_seed(self, kind):
        cfg = LargeGraphConfig(kind=kind, n_functions=40, seed=11)
        a = generate_large_graph(cfg)
        b = generate_large_graph(cfg)
        assert a.functions == b.functions
        assert a.edges == b.edges

    def test_seeds_differ(self):
        edges = {
            generate_large_graph(
                LargeGraphConfig(kind="random", n_functions=40, seed=s)
            ).edges
            for s in range(4)
        }
        assert len(edges) > 1

    def test_config_validation(self):
        with pytest.raises(ValueError, match="kind"):
            LargeGraphConfig(kind="bogus")
        with pytest.raises(ValueError):
            LargeGraphConfig(n_functions=1)
        with pytest.raises(ValueError):
            LargeGraphConfig(candidate_density=0)


class TestWorld:
    @pytest.fixture(scope="class")
    def world(self):
        return largegraph_world(
            LargeGraphConfig(kind="layered", n_functions=30, candidate_density=3, seed=5),
            n_peers=20,
            n_ip=100,
        )

    def test_population_density(self, world):
        assert len(world.population) == 30 * 3
        per_fn = {}
        for spec in world.population:
            per_fn.setdefault(spec.function, set()).add(spec.peer)
        # replicas of one function live on distinct peers
        assert all(len(peers) == 3 for peers in per_fn.values())

    def test_registry_serves_every_function(self, world):
        for fn in world.graph.functions:
            assert len(world.net.registry.duplicates(fn)) == 3

    def test_request_bounds_scale_with_depth(self, world):
        shallow = largegraph_request(
            world.overlay, world.graph,
            LargeGraphConfig(n_functions=30, qos_tightness=1.0, seed=5),
        )
        loose = largegraph_request(
            world.overlay, world.graph,
            LargeGraphConfig(n_functions=30, qos_tightness=2.0, seed=5),
        )
        assert loose.qos.bounds["delay"] > shallow.qos.bounds["delay"]
        assert loose.qos.bounds["loss"] > shallow.qos.bounds["loss"]
        assert shallow.qos.bounds["delay"] > 0

    def test_request_uses_the_graph(self, world):
        assert world.request.function_graph is world.graph
        assert world.request.source_peer != world.request.dest_peer

    def test_world_is_composable(self, world):
        """The generated problem must actually have a qualified answer —
        otherwise the benchmark compares failure modes, not search."""
        strategy = world.net.use_composer("decompose")
        result = strategy.compose(world.request, confirm=False)
        world.net.use_composer(None)
        assert result.success, result.failure_reason
