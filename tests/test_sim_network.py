"""Unit tests for the simulated message network."""

import pytest

from repro.sim.engine import Simulator
from repro.sim.network import Message, MessageNetwork, UnknownNodeError


class Recorder:
    def __init__(self, node_id):
        self.node_id = node_id
        self.received = []

    def on_message(self, msg):
        self.received.append(msg)


@pytest.fixture
def sim():
    return Simulator()


@pytest.fixture
def network(sim):
    net = MessageNetwork(sim, latency_fn=lambda a, b: 0.010 * abs(a - b))
    for i in range(4):
        net.register(Recorder(i))
    return net


class TestDelivery:
    def test_message_delivered_after_latency(self, sim, network):
        network.send(0, 2, "hello", category="test")
        sim.run()
        node = network.node(2)
        assert len(node.received) == 1
        assert node.received[0].payload == "hello"
        assert sim.now == pytest.approx(0.020)

    def test_latency_zero_for_self(self, network):
        assert network.latency(1, 1) == 0.0

    def test_latency_uses_fn(self, network):
        assert network.latency(0, 3) == pytest.approx(0.030)

    def test_negative_latency_falls_back_to_default(self, sim):
        net = MessageNetwork(sim, latency_fn=lambda a, b: -1.0, default_latency=0.5)
        assert net.latency(0, 1) == 0.5

    def test_messages_ordered_by_distance(self, sim, network):
        network.send(0, 3, "far")
        network.send(0, 1, "near")
        order = []
        network.node(1).on_message = lambda m: order.append("near")
        network.node(3).on_message = lambda m: order.append("far")
        sim.run()
        assert order == ["near", "far"]

    def test_message_ids_unique(self, network):
        m1 = network.send(0, 1, "a")
        m2 = network.send(0, 1, "b")
        assert m1.msg_id != m2.msg_id


class TestLiveness:
    def test_send_to_dead_node_dropped(self, sim, network):
        network.set_alive(2, False)
        network.send(0, 2, "x")
        sim.run()
        assert network.node(2).received == []
        assert network.dropped == 1

    def test_dead_sender_still_charged(self, sim, network):
        before = network.ledger.total_count()
        network.set_alive(2, False)
        network.send(0, 2, "x", category="probe")
        assert network.ledger.total_count() == before + 1

    def test_node_dying_in_flight_drops_message(self, sim, network):
        network.send(0, 3, "x")
        sim.schedule(0.001, network.set_alive, 3, False)
        sim.run()
        assert network.node(3).received == []

    def test_alive_nodes(self, network):
        network.set_alive(1, False)
        assert sorted(network.alive_nodes()) == [0, 2, 3]
        assert not network.is_alive(1)

    def test_unregister(self, network):
        network.unregister(3)
        assert 3 not in network.nodes()
        assert not network.is_alive(3)

    def test_send_to_unregistered_destination_charged_and_dropped(self, network):
        network.unregister(3)
        before_drop = network.dropped
        network.send(0, 3, "x", category="probe")
        assert network.dropped == before_drop + 1


class TestErrors:
    def test_unknown_sender_raises(self, network):
        with pytest.raises(UnknownNodeError):
            network.send(99, 0, "x")

    def test_unknown_node_lookup_raises(self, network):
        with pytest.raises(UnknownNodeError):
            network.node(99)

    def test_set_alive_unknown_raises(self, network):
        with pytest.raises(UnknownNodeError):
            network.set_alive(99, True)


class TestLedger:
    def test_send_charges_ledger(self, network):
        network.send(0, 1, "x", category="probe", size=100)
        assert network.ledger.count["probe"] == 1
        assert network.ledger.bytes["probe"] == 100

    def test_charge_without_delivery(self, network):
        network.charge("state_update", count=50, size=8)
        assert network.ledger.count["state_update"] == 50
