"""Unit tests for measurement instruments."""

import math

import numpy as np
import pytest

from repro.sim.metrics import (
    Counter,
    LatencyStats,
    MessageLedger,
    RateOverTime,
    RatioMeter,
    TimeSeries,
    summary_stats,
)


class TestSummaryStats:
    def test_empty_sample_is_nan_safe(self):
        s = summary_stats([])
        assert s["count"] == 0
        assert math.isnan(s["mean"]) and math.isnan(s["p99"])

    def test_known_values(self):
        s = summary_stats([1.0, 2.0, 3.0, 4.0])
        assert s["count"] == 4
        assert s["mean"] == 2.5
        assert s["min"] == 1.0 and s["max"] == 4.0
        assert s["p50"] == 2.5

    def test_single_value(self):
        s = summary_stats([7.0])
        assert s["mean"] == s["min"] == s["max"] == s["p50"] == 7.0
        assert s["std"] == 0.0


class TestCounter:
    def test_increments(self):
        c = Counter()
        c.incr("a")
        c.incr("a", 4)
        assert c.get("a") == 5

    def test_unknown_is_zero(self):
        assert Counter().get("missing") == 0

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter().incr("a", -1)

    def test_as_dict(self):
        c = Counter()
        c.incr("x", 2)
        assert c.as_dict() == {"x": 2}


class TestRatioMeter:
    def test_ratio(self):
        m = RatioMeter()
        for ok in (True, True, False, True):
            m.record(ok)
        assert m.ratio == 0.75

    def test_empty_ratio_is_nan(self):
        assert math.isnan(RatioMeter().ratio)

    def test_merge(self):
        a, b = RatioMeter(), RatioMeter()
        a.record(True)
        b.record(False)
        b.record(True)
        merged = a.merge(b)
        assert merged.total == 3 and merged.successes == 2


class TestTimeSeries:
    def test_record_and_window_mean(self):
        ts = TimeSeries()
        for t, v in [(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)]:
            ts.record(t, v)
        assert ts.window_mean(0.0, 2.0) == 2.0
        assert len(ts) == 3

    def test_out_of_order_rejected(self):
        ts = TimeSeries()
        ts.record(2.0, 1.0)
        with pytest.raises(ValueError):
            ts.record(1.0, 1.0)

    def test_empty_window_nan(self):
        ts = TimeSeries()
        assert math.isnan(ts.window_mean(0, 1))

    def test_as_arrays(self):
        ts = TimeSeries()
        ts.record(1.0, 2.0)
        t, v = ts.as_arrays()
        assert t.tolist() == [1.0] and v.tolist() == [2.0]


class TestRateOverTime:
    def test_bins_counts(self):
        r = RateOverTime(bin_width=1.0)
        r.record(0.2)
        r.record(0.8)
        r.record(2.5)
        times, counts = r.series()
        assert times.tolist() == [0.0, 1.0, 2.0]
        assert counts.tolist() == [2.0, 0.0, 1.0]

    def test_until_extends_with_zeros(self):
        r = RateOverTime(bin_width=1.0)
        r.record(0.5)
        times, counts = r.series(until=4.0)
        assert len(counts) == 4
        assert counts.tolist() == [1.0, 0.0, 0.0, 0.0]

    def test_empty_series(self):
        times, counts = RateOverTime(1.0).series()
        assert len(times) == 0

    def test_total(self):
        r = RateOverTime(2.0)
        r.record(1.0, count=3)
        r.record(5.0)
        assert r.total == 4

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            RateOverTime(1.0).record(-1.0)

    def test_bad_bin_width_rejected(self):
        with pytest.raises(ValueError):
            RateOverTime(0.0)


class TestLatencyStats:
    def test_phase_means(self):
        ls = LatencyStats()
        ls.record("discovery", 0.1)
        ls.record("discovery", 0.3)
        ls.record("probe", 1.0)
        assert ls.mean("discovery") == pytest.approx(0.2)
        assert ls.phases() == ["discovery", "probe"]

    def test_totals_sums_phases(self):
        ls = LatencyStats()
        ls.record("a", 1.0)
        ls.record("b", 2.0)
        assert ls.totals()["total"] == pytest.approx(3.0)

    def test_unknown_phase_nan(self):
        assert math.isnan(LatencyStats().mean("nope"))

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            LatencyStats().record("x", -0.5)

    def test_stats_shape(self):
        ls = LatencyStats()
        ls.record("x", 1.0)
        assert ls.stats("x")["count"] == 1


class TestMessageLedger:
    def test_counts_and_bytes(self):
        ml = MessageLedger()
        ml.record("probe", 256)
        ml.record("probe", 256, count=3)
        assert ml.count["probe"] == 4
        assert ml.bytes["probe"] == 1024

    def test_total_by_category(self):
        ml = MessageLedger()
        ml.record("a", 10, 2)
        ml.record("b", 20, 1)
        assert ml.total_count() == 3
        assert ml.total_count(["a"]) == 2
        assert ml.total_bytes(["b"]) == 20

    def test_zero_size_counts_no_bytes(self):
        ml = MessageLedger()
        ml.record("x", 0, 5)
        assert ml.total_count() == 5
        assert ml.total_bytes() == 0

    def test_as_dict(self):
        ml = MessageLedger()
        ml.record("x", 8)
        d = ml.as_dict()
        assert d["count"] == {"x": 1} and d["bytes"] == {"x": 8}
