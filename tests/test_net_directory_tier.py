"""The directory acceleration tier: caching, churn, Bloom, fan-out.

The tier (``DirectoryTierConfig``) rides on distributed mode: peer-local
positive caches invalidated by registration churn, Bloom-summary
negative caching, popularity-driven replica pushes and batched boot
registration.  These tests pin down the correctness edges the parity
matrix cannot see:

* churn invalidation — a content-changing re-registration must be
  visible to every peer's next lookup, not after a TTL;
* Bloom semantics — a false positive degrades to a real routed lookup
  (never a phantom *presence*), and absence proofs can never hide a
  registered function (no false negatives by construction);
* fan-out — a hot key's rows land past the base replica set and serve
  lookups there without touching the owner;
* hygiene — the single-flight maps drain after every compose.
"""

import asyncio
import dataclasses

import pytest

from repro.core.qos import QoSVector
from repro.dht.id_space import key_for
from repro.discovery.metadata import ServiceMetadata
from repro.net import ClusterConfig, DirectoryTierConfig, LiveCluster
from repro.net.bloom import BloomFilter
from repro.net.directory import DirectorySlice
from repro.net.rpc import RetryPolicy


def _cluster(**overrides):
    fast = RetryPolicy(timeout=0.3, retries=2, backoff=0.02)
    base = dict(
        n_peers=10,
        n_functions=6,
        seed=7,
        capacity_scale=10.0,
        probe_retry=fast,
        control_retry=fast,
    )
    base.update(overrides)
    return LiveCluster(ClusterConfig(**base))


def _functions(cluster):
    return sorted({s.function for s in cluster.scenario.population})


def _wire_function(cluster, daemon):
    """A (function, key) pair the daemon must resolve over the wire."""
    for fn in _functions(cluster):
        key = key_for(fn)
        if daemon.peer_id not in daemon.ring.replica_peers(key):
            return fn, key
    pytest.skip("fixture: daemon replicates every function key")


# ----------------------------------------------------------------------
# Bloom filter
# ----------------------------------------------------------------------
def test_bloom_filter_no_false_negatives_and_wire_roundtrip():
    bloom = BloomFilter()
    names = [f"F{i:03d}" for i in range(40)]
    for name in names:
        bloom.add(name)
    # no false negatives, ever — that is the invariant negative caching
    # leans on (a FP costs a wasted lookup; a FN would hide a service)
    assert all(name in bloom for name in names)
    assert len(bloom) > 0

    wire = bloom.to_wire()
    m, k, bits = wire
    assert isinstance(bits, str)
    copy = BloomFilter.from_wire(wire)
    assert copy == bloom
    assert all(name in copy for name in names)

    with pytest.raises(ValueError):
        BloomFilter(m=0)
    with pytest.raises(ValueError):
        BloomFilter(k=0)


def test_bloom_false_positive_rate_is_small():
    bloom = BloomFilter(m=512, k=4)
    for i in range(30):
        bloom.add(f"member{i}")
    fps = sum(1 for i in range(1000) if f"absent{i}" in bloom)
    # 30 members in 512 bits / 4 hashes -> theoretical FP ~0.03%
    assert fps < 50


# ----------------------------------------------------------------------
# slice bookkeeping
# ----------------------------------------------------------------------
def test_slice_versions_track_content_changes():
    cluster = _cluster()
    spec = cluster.scenario.population[0]
    key = key_for(spec.function)
    d = DirectorySlice()
    meta = ServiceMetadata.from_spec(spec, registered_at=0.0)

    assert d.store(key, meta) is True
    v1 = d.key_version(key)
    assert v1 == d.version > 0
    assert d.store(key, meta) is False  # exact replay: no version bump
    assert d.key_version(key) == v1

    changed = ServiceMetadata.from_spec(
        dataclasses.replace(spec, qp=QoSVector({"delay": 99.0})), registered_at=1.0
    )
    assert d.store(key, changed) is True  # replaced row = content change
    assert d.key_version(key) > v1
    assert spec.function in d.bloom

    # replica rows: newest version wins, stale pushes are dropped
    assert d.store_replica(key, [meta], version=5) is True
    assert d.store_replica(key, [changed], version=4) is False
    assert [m.registered_at for m in d.replica_lookup(key)] == [0.0]
    assert d.store_replica(key, [changed], version=6) is True
    d.drop_replica(key)
    assert d.replica_lookup(key) is None


# ----------------------------------------------------------------------
# boot-time registration batching
# ----------------------------------------------------------------------
def test_register_batch_coalesces_boot_frames():
    def boot_frames(tier):
        async def scenario():
            # a small ring concentrates each registrant's specs on few
            # owners, which is where per-target batching pays off
            cluster = _cluster(n_peers=5, directory_tier=tier)
            async with cluster:
                wire = cluster.tap.wire_summary()
            assert cluster.errors() == []
            return wire.get("net_directory", (0, 0))[0]

        return asyncio.run(scenario())

    batched = boot_frames(DirectoryTierConfig())
    unbatched = boot_frames(DirectoryTierConfig(enabled=False))
    # same rows reach the same owners, in fewer frames: one
    # RegisterBatch per (registrant, owner) pair instead of one
    # RegisterComponent per (spec, replica)
    assert batched > 0
    assert batched <= unbatched * 0.65


# ----------------------------------------------------------------------
# churn invalidation
# ----------------------------------------------------------------------
def test_churn_invalidation_reaches_warm_caches_distributed():
    """Re-registering a component with changed QoS must be visible to
    the next lookup of *every* peer that cached the old rows — the
    precise ReplicaInvalidate fan-out, not the TTL, does this."""

    async def scenario():
        cluster = _cluster()
        async with cluster:
            spec = cluster.scenario.population[0]
            fn, key = spec.function, key_for(spec.function)
            host = cluster.daemons[spec.peer]
            queriers = [
                d
                for p, d in sorted(cluster.daemons.items())
                if p not in d.ring.replica_peers(key) and p != spec.peer
            ][:3]
            assert queriers, "fixture: no outside queriers"

            # warm every querier's positive cache over the wire
            warm = {}
            for d in queriers:
                rows, _ = await d._lookup(fn, d.peer_id)
                warm[d.peer_id] = {
                    m.component_id: m.qp.values.get("delay") for m in rows
                }
                assert fn in d._dir_cache  # really cached

            changed = dataclasses.replace(spec, qp=QoSVector({"delay": 99.0}))
            await host.register_components([changed], now=1.0)

            after = {}
            for d in queriers:
                rows, _ = await d._lookup(fn, d.peer_id)
                after[d.peer_id] = {
                    m.component_id: m.qp.values.get("delay") for m in rows
                }
            return spec, warm, after, cluster.errors()

    spec, warm, after, errors = asyncio.run(scenario())
    assert errors == []
    for peer, rows in warm.items():
        assert rows[spec.component_id] != 99.0, peer
    for peer, rows in after.items():
        assert rows[spec.component_id] == 99.0, peer


def test_churn_visible_immediately_shared_mode():
    """Shared mode has no caches: a registration RPC is visible to every
    daemon's next lookup the moment it completes."""

    async def scenario():
        cluster = _cluster(distributed=False)
        async with cluster:
            template = cluster.scenario.population[0]
            spec = dataclasses.replace(template, function="zz_churn_fn", peer=4)
            before, _ = await cluster.daemons[0]._lookup("zz_churn_fn", 0)
            # shared-mode registration path: a RegisterComponent RPC into
            # any daemon lands in the shared registry
            from repro.net import codec

            await cluster.daemons[4].endpoint.call(
                0, codec.RegisterComponent(spec, registered_at=1.0)
            )
            after = [
                (await cluster.daemons[p]._lookup("zz_churn_fn", p))[0]
                for p in (0, 3, 7)
            ]
            return before, after, cluster.errors()

    before, after, errors = asyncio.run(scenario())
    assert errors == []
    assert before == []
    for rows in after:
        assert [m.peer for m in rows] == [4]


# ----------------------------------------------------------------------
# Bloom negative caching on the live path
# ----------------------------------------------------------------------
def test_bloom_short_circuits_absent_function_lookups():
    async def scenario():
        cluster = _cluster()
        async with cluster:
            daemon = next(
                d for d in cluster.daemons.values()
                if d.ring.owner_peer(key_for("zz_nowhere")) != d.peer_id
            )
            first, _ = await daemon._lookup("zz_nowhere", daemon.peer_id)
            owner = daemon.ring.owner_peer(key_for("zz_nowhere"))
            learned = owner in daemon._owner_blooms
            # drop the positive (empty) cache entry so the second lookup
            # exercises the negative path, not the positive cache
            daemon._dir_cache.clear()
            frames_before = cluster.transport.frames_sent
            second, _ = await daemon._lookup("zz_nowhere", daemon.peer_id)
            frames_after = cluster.transport.frames_sent
            return (
                first, second, learned, daemon.neg_hits,
                frames_after - frames_before, cluster.errors(),
            )

    first, second, learned, neg_hits, frames, errors = asyncio.run(scenario())
    assert errors == []
    assert first == [] and second == []
    assert learned  # the miss carried the owner's summary back
    assert neg_hits >= 1
    assert frames == 0  # absence proved without touching the wire


def test_bloom_false_positive_falls_back_to_real_lookup():
    """A Bloom false positive must degrade to a routed wire lookup that
    returns the truth (no rows) — never to a phantom presence."""

    async def scenario():
        cluster = _cluster()
        async with cluster:
            fn = "zz_phantom"
            key = key_for(fn)
            daemon = next(
                d for d in cluster.daemons.values()
                if d.peer_id not in d.ring.replica_peers(key)
            )
            owner = daemon.ring.owner_peer(key)
            # forge a summary that claims the absent function is present
            # (the worst-case false positive)
            fp = BloomFilter()
            fp.add(fn)
            daemon._owner_blooms[owner] = (fp, 1e9)
            frames_before = cluster.transport.frames_sent
            rows, _ = await daemon._lookup(fn, daemon.peer_id)
            frames_after = cluster.transport.frames_sent
            return rows, frames_after - frames_before, cluster.errors()

    rows, frames, errors = asyncio.run(scenario())
    assert errors == []
    assert rows == []  # ground truth wins
    assert frames > 0  # the FP cost a real wire exchange, nothing more


# ----------------------------------------------------------------------
# popularity-driven replica fan-out
# ----------------------------------------------------------------------
def test_hot_function_rows_fan_out_past_base_replicas():
    async def scenario():
        tier = DirectoryTierConfig(
            hot_threshold=3.0, replica_span=2, popularity_halflife=100.0
        )
        cluster = _cluster(directory_tier=tier)
        async with cluster:
            ring = next(iter(cluster.daemons.values())).ring
            # a function whose extended ring has room past the base set
            fn = key = extended = None
            for cand in _functions(cluster):
                k = key_for(cand)
                base = ring.replica_peers(k)
                ext = [p for p in ring.extended_replica_peers(k, 2) if p not in base]
                if ext:
                    fn, key, extended = cand, k, ext
                    break
            assert fn is not None

            owner = ring.owner_peer(key)
            expected = sorted(
                s.component_id
                for s in cluster.scenario.population
                if s.function == fn
            )
            outsiders = [
                p for p in sorted(cluster.daemons)
                if p not in ring.replica_peers(key) and p not in extended
            ]
            for p in outsiders[:4]:
                await cluster.daemons[p]._lookup(fn, p)
            await cluster.daemons[owner].drain()  # let the spawned push land

            target = cluster.daemons[extended[0]]
            held = target.directory.replica_lookup(key)

            frames_before = cluster.transport.frames_sent
            rows, _ = await target._lookup(fn, target.peer_id)
            frames_local = cluster.transport.frames_sent - frames_before
            return expected, held, rows, frames_local, target.replica_serves, cluster.errors()

    expected, held, rows, frames_local, serves, errors = asyncio.run(scenario())
    assert errors == []
    assert held is not None, "hot rows never reached the extended replica"
    assert sorted(m.component_id for m in held) == expected
    # the holder now serves the hot key without any wire traffic
    assert sorted(m.component_id for m in rows) == expected
    assert frames_local == 0
    assert serves >= 1


# ----------------------------------------------------------------------
# single-flight hygiene (the _lookup_flight eviction fix)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("dir_cache", [False, True], ids=["tier-off", "tier-on"])
def test_lookup_flight_maps_drain_after_compose(dir_cache):
    async def scenario():
        cluster = _cluster(
            directory_tier=DirectoryTierConfig(enabled=dir_cache)
        )
        async with cluster:
            gen = cluster.scenario.requests
            for _ in range(3):
                await cluster.compose(gen.next_request(), timeout=60)
            for daemon in cluster.daemons.values():
                await daemon.drain()
            flights = {
                p: dict(d._lookup_flight) for p, d in cluster.daemons.items()
            }
            misses = {p: dict(d._miss_flight) for p, d in cluster.daemons.items()}
            return flights, misses, cluster.errors()

    flights, misses, errors = asyncio.run(scenario())
    assert errors == []
    # per-rid flight maps must not leak entries across compositions
    assert all(not f for f in flights.values()), flights
    assert all(not m for m in misses.values()), misses
