"""Regression: a setup ack that loses the soft-state expiry race must not
leak the reservations it already made firm.

The scenario: the destination's confirm pass flips tokens firm peer by
peer; an injected one-way latency delays only the frames headed at one
*target* peer (armed once the destination starts finalizing, so the
probe wave itself is undisturbed and still matches the synchronous
engine).  The target's soft timer fires while the SessionConfirm is in
flight, the confirm pass comes up short, and the destination aborts the
session with ``_broadcast_release(rid, set())``.

Pre-fix, that final release could only cancel *soft* claims —
``ResourcePool.cancel`` refuses firm ones — so every token the pass had
already confirmed stayed allocated forever.  The fix tracks firm tokens
per request and releases them explicitly; afterwards every pool in the
cluster must be empty.
"""

import asyncio

from repro.core.bcp import BCPConfig, NextHopWeights
from repro.core.resources import ResourceVector
from repro.net import ClusterConfig, LiveCluster

DELAY = 0.6  # one-way latency injected toward the target peer
SOFT = 1.5 * DELAY  # expires between the release gather and the confirm


def _find_race_fixture(cluster):
    """Pick a request whose winning graph lets the race fire.

    The *target* (the last peer the confirm pass reaches, i.e. the max
    peer id involved) must not be the source or destination, and at
    least one other peer must hold a required reservation — otherwise
    nothing goes firm before the failure and the test proves nothing.
    """
    sync_bcp = cluster.scenario.net.bcp
    for request in cluster.scenario.requests.batch(10):
        res = sync_bcp.compose(request, confirm=False)
        if not res.success:
            continue
        involved = set(res.best.peers()) | {request.dest_peer}
        target = max(involved)
        if target in (request.source_peer, request.dest_peer):
            continue
        others = involved - {target, request.source_peer}
        if not others:
            continue
        return request, target
    return None, None


def test_failed_setup_ack_releases_already_confirmed_tokens():
    armed = {"on": False, "target": None}

    def latency(src, dst):
        if armed["on"] and dst == armed["target"]:
            return DELAY
        return 0.0

    config = ClusterConfig(
        n_peers=10,
        n_functions=6,
        seed=11,
        latency=latency,
        bcp_config=BCPConfig(
            budget=32,
            nexthop_weights=NextHopWeights(delay=0.6, bandwidth=0.0, failure=0.4),
        ),
        capacity_scale=10.0,
        soft_timeout=SOFT,
    )

    async def scenario():
        cluster = LiveCluster(config)
        # learn phase (sync engine, before the cluster seals anything):
        # which request composes a graph with a usable race target?
        request, target = _find_race_fixture(cluster)
        assert request is not None, "fixture: no request produced a raceable graph"
        armed["target"] = target

        # arm the latency only once the destination starts finalizing, so
        # the wave runs undelayed and selects the learned winner exactly
        dest = cluster.daemons[request.dest_peer]
        orig_finalize = dest._finalize

        async def finalize_hook(rid, why):
            armed["on"] = True
            return await orig_finalize(rid, why)

        dest._finalize = finalize_hook

        # count pool.confirm calls: the race is only meaningful if some
        # token actually went firm before the confirm pass failed
        went_firm = []
        for peer, daemon in cluster.daemons.items():
            orig = daemon.bcp.pool.confirm

            def wrapped(token, _orig=orig, _peer=peer):
                went_firm.append((_peer, token))
                return _orig(token)

            daemon.bcp.pool.confirm = wrapped

        async with cluster:
            result = await cluster.compose(request, confirm=True, timeout=60)
            soft_left = cluster.soft_tokens()
            pool_left = cluster.pool_tokens()
            errors = cluster.errors()
        return result, went_firm, soft_left, pool_left, errors

    result, went_firm, soft_left, pool_left, errors = asyncio.run(scenario())
    assert errors == []
    # the target's reservation expired mid-confirm: setup must fail ...
    assert not result.success
    assert result.failure_reason == "setup ack found expired reservation or dead peer"
    # ... *after* other peers already confirmed (the race actually ran)
    assert went_firm, "no token went firm before the failure — race never happened"
    # pre-fix: the firm tokens survive the final release and leak here
    assert soft_left == {}
    assert pool_left == {peer: [] for peer in pool_left}


def test_stale_expiry_callback_cannot_cancel_a_confirmed_token():
    """The confirm path disarms bookkeeping before flipping the claim
    firm, so an expiry callback already queued behind the confirm frame
    finds nothing to act on and the firm claim survives untouched."""

    async def scenario():
        cluster = LiveCluster(
            ClusterConfig(n_peers=4, n_functions=4, seed=3, capacity_scale=10.0)
        )
        async with cluster:
            daemon = cluster.daemons[1]
            pool = daemon.bcp.pool
            rid = 999
            token = (rid, "comp", "X")
            assert pool.soft_allocate_peer(token, 1, ResourceVector({"cpu": 0.1}))
            daemon._tokens.setdefault(rid, set()).add(token)
            daemon._arm_expiry(rid, token)

            confirmed = daemon._apply_confirm(rid, {token})
            assert confirmed == {token}
            # the timer fired anyway (stale callback): must be a no-op
            daemon._expire_token(rid, token)
            still_firm = pool.has_token(token)

            daemon._apply_release(rid, set())
            freed = not pool.has_token(token)
        return still_firm, freed

    still_firm, freed = asyncio.run(scenario())
    assert still_firm
    assert freed
