"""Tests for the SpiderNet facade wiring."""

import numpy as np
import pytest

from repro.core import SpiderNet
from repro.core.composition import default_peer_capacity
from repro.core.resources import ResourceVector
from repro.workload import PopulationConfig, generate_population


class TestBuild:
    def test_build_wires_everything(self, overlay):
        net = SpiderNet.build(overlay, rng=np.random.default_rng(0))
        assert net.overlay is overlay
        assert net.pool.overlay is overlay
        assert net.bcp.pool is net.pool
        assert net.sessions.bcp is net.bcp
        assert net.dht.alive_count() == overlay.n_peers
        assert net.churn is None

    def test_default_capacity_heterogeneous(self):
        caps = default_peer_capacity(20, rng=np.random.default_rng(0))
        cpus = {caps[p].get("cpu") for p in range(20)}
        assert len(cpus) > 1
        for p in range(20):
            assert 50.0 <= caps[p].get("cpu") <= 150.0
            assert 256.0 <= caps[p].get("memory") <= 1024.0

    def test_custom_capacity_respected(self, overlay):
        caps = {p: ResourceVector({"cpu": 7.0, "memory": 7.0}) for p in overlay.peers()}
        net = SpiderNet.build(overlay, rng=np.random.default_rng(0), peer_capacity=caps)
        assert net.pool.capacity(0).get("cpu") == 7.0

    def test_churn_wiring(self, overlay):
        net = SpiderNet.build(overlay, rng=np.random.default_rng(0), churn_rate=0.5)
        assert net.churn is not None
        net.start_churn()
        net.run(until=2.0)
        assert net.churn.failures > 0
        # DHT liveness tracks network liveness
        down = [p for p in overlay.peers() if not net.network.is_alive(p)]
        for p in down:
            assert not net.dht.is_alive(net.dht.node_of_peer[p])

    def test_start_churn_without_churn_raises(self, net):
        with pytest.raises(RuntimeError):
            net.start_churn()

    def test_shared_ledger(self, net):
        assert net.bcp.ledger is net.ledger
        assert net.network.ledger is net.ledger


class TestDeployAndCompose:
    def test_deploy_registers_all(self, overlay):
        net = SpiderNet.build(overlay, rng=np.random.default_rng(0))
        pop = generate_population(
            overlay, PopulationConfig(n_functions=8), rng=np.random.default_rng(1)
        )
        net.deploy(pop)
        assert len(net.registry.functions()) > 0
        total = sum(len(net.registry.duplicates(f)) for f in net.registry.functions())
        assert total == len(pop)

    def test_compose_default_does_not_hold_resources(self, populated_net, request_gen):
        net, _ = populated_net
        result = net.compose(request_gen.next_request())
        if result.success:
            assert net.pool.active_tokens() == []

    def test_start_session_holds_until_teardown(self, populated_net, request_gen):
        net, _ = populated_net
        session = None
        for _ in range(10):
            session = net.start_session(request_gen.next_request())
            if session is not None:
                break
        assert session is not None
        assert net.pool.active_tokens()
        net.sessions.teardown(session.session_id)
        assert net.pool.active_tokens() == []


class TestAdaptiveBudgetIntegration:
    def test_policy_drives_budget_and_learns(self, populated_net, request_gen):
        from repro.core import AdaptiveBudgetPolicy, BudgetPolicyConfig

        net, _ = populated_net
        policy = AdaptiveBudgetPolicy(BudgetPolicyConfig(base=4, window=5))
        net.budget_policy = policy
        for _ in range(8):
            net.compose(request_gen.next_request())
        # outcomes were recorded (window fills and may adjust)
        assert len(policy._outcomes) <= 5

    def test_explicit_budget_bypasses_policy(self, populated_net, request_gen):
        from repro.core import AdaptiveBudgetPolicy, BudgetPolicyConfig

        net, _ = populated_net
        policy = AdaptiveBudgetPolicy(BudgetPolicyConfig(base=4))
        net.budget_policy = policy
        result = net.compose(request_gen.next_request(), budget=16)
        # record_outcome still called; probes bounded by the explicit budget
        assert result.candidates_examined <= 16
