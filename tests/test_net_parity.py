"""Acceptance: the live runtime reproduces the synchronous BCP's choices.

A 10-peer loopback cluster and the plain synchronous ``BCP`` run the
same seeded request set against one shared scenario; both must select
the same service graph with the same probe accounting.  Credit-based
termination makes the live finalize quiescent (no in-flight probes),
which is what makes the comparison exact rather than statistical.

The parity matrix also spans the wire fast path: codec version (v1 JSON
vs v2 binary) and write coalescing are pure transport concerns, so every
combination must reproduce the same selections — and charge the same
*logical* message counts to the ledger (batching changes frames, never
logical messages).

A third axis covers the directory acceleration tier: with the tier on,
repeated lookups are served from peer-local caches instead of routing
the DHT, yet selections stay bit-identical — the cached (components,
rtt) pair is exactly what re-routing a static ring would produce.  What
*does* change is the ``dht_route`` charge per compose, which a dedicated
test pins down (fewer routes with caching, same bcp_* books).

A further test drives a real TCP cluster through a peer kill and shows a
composition still completing end-to-end with the retry/backoff path
exercised.
"""

import asyncio

import pytest

from repro.core.bcp import BCPConfig, NextHopWeights
from repro.net import (
    ClusterConfig,
    DirectoryTierConfig,
    LiveCluster,
    MeasurementConfig,
)
from repro.net.rpc import RetryPolicy


def _parity_config(transport="loopback", **overrides):
    base = dict(
        n_peers=10,
        n_functions=6,
        transport=transport,
        seed=11,
        # bandwidth=0 keeps next-hop scoring independent of mid-wave pool
        # state, whose mutation *order* differs between substrates.
        bcp_config=BCPConfig(
            budget=32,
            nexthop_weights=NextHopWeights(delay=0.6, bandwidth=0.0, failure=0.4),
        ),
        capacity_scale=10.0,
    )
    base.update(overrides)
    return ClusterConfig(**base)


# every (codec, coalescing) combination the transports can negotiate,
# plus the directory tier toggled off on the fast-path combo — caching
# must be invisible to selections in both states
_WIRE_AXES = [
    (1, False, True),
    (1, True, True),
    (2, False, True),
    (2, True, True),
    (2, True, False),
]
_WIRE_IDS = ["v1-drain", "v1-coalesced", "v2-drain", "v2-coalesced", "v2-nocache"]


@pytest.mark.parametrize("wire_version,coalesce,dir_cache", _WIRE_AXES, ids=_WIRE_IDS)
@pytest.mark.parametrize("distributed", [False, True], ids=["shared", "distributed"])
def test_loopback_cluster_matches_synchronous_bcp(
    distributed, wire_version, coalesce, dir_cache
):
    """Both state models must reproduce the sync engine's exact choices.

    The distributed variant additionally proves the selections were made
    with *zero* reads of the shared registry / pool / DHT storage: the
    cluster's SharedStateGuard seals them for its whole lifetime and
    records (then raises on) any access.
    """

    async def scenario():
        cluster = LiveCluster(
            _parity_config(
                distributed=distributed,
                wire_version=wire_version,
                coalesce_writes=coalesce,
                directory_tier=DirectoryTierConfig(enabled=dir_cache),
            )
        )
        requests = cluster.scenario.requests.batch(5)
        sync_bcp = cluster.scenario.net.bcp

        # synchronous pass first: confirm=False releases every reservation,
        # so the live pass starts from identical pool state.  (Runs before
        # the cluster starts — the guard is sealed only while it runs.)
        expected = [sync_bcp.compose(r, confirm=False) for r in requests]

        live = []
        async with cluster:
            for r in requests:
                live.append(await cluster.compose(r, confirm=False, timeout=60))
        leaked = cluster.soft_tokens()
        errors = cluster.errors()
        violations = (
            list(cluster.shared_guard.violations)
            if cluster.shared_guard is not None
            else []
        )
        return expected, live, leaked, errors, violations

    expected, live, leaked, errors, violations = asyncio.run(scenario())
    assert errors == []
    assert leaked == {}
    assert violations == []
    assert any(e.success for e in expected), "fixture must compose something"
    for sync_r, live_r in zip(expected, live):
        rid = sync_r.request.request_id
        assert live_r.success == sync_r.success, rid
        if sync_r.success:
            assert live_r.best.signature() == sync_r.best.signature(), rid
        assert live_r.probes_sent == sync_r.probes_sent, rid
        assert live_r.candidates_examined == sync_r.candidates_examined, rid


def test_wire_options_change_frames_not_logical_messages():
    """Across the whole (codec x coalescing) matrix the live pass must
    make identical selections and charge identical logical message
    counts — the fast path may change how bytes travel, never what the
    protocol says."""

    # one shared scenario for every combo: component/request ids come
    # from process-global counters, so only same-scenario runs are
    # comparable.  confirm=False releases every reservation, leaving the
    # pools in their initial state for the next combo's pass.
    # hot_threshold=0 disables the popularity fan-out, whose wall-clock
    # EWMA makes push counts timing-dependent; the cache hit/miss books
    # are deterministic (one miss + N-1 hits per (daemon, function)).
    # Measurement is pinned off for the same reason: how many active
    # probe cycles fire during a pass is wall-clock-dependent, and this
    # test asserts *full-dict* count equality.  (The selection-parity
    # matrix above runs with measurement on — its default — which is
    # what proves the plane never perturbs choices.)
    shared = {}
    tier = DirectoryTierConfig(hot_threshold=0.0)

    def one_combo(wire_version, coalesce):
        async def scenario():
            cluster = LiveCluster(
                _parity_config(
                    distributed=True,
                    wire_version=wire_version,
                    coalesce_writes=coalesce,
                    directory_tier=tier,
                    measurement=MeasurementConfig(enabled=False),
                ),
                scenario=shared.get("scenario"),
            )
            if "scenario" not in shared:
                shared["scenario"] = cluster.scenario
                shared["requests"] = cluster.scenario.requests.batch(4)
            async with cluster:
                snap = cluster.ledger.snapshot()
                results = []
                for r in shared["requests"]:
                    results.append(await cluster.compose(r, confirm=False, timeout=60))
                delta = cluster.ledger.delta_since(snap)
            assert cluster.errors() == []
            assert cluster.soft_tokens() == {}
            sigs = [r.best.signature() if r.success else None for r in results]
            # counts only: encoded byte sizes legitimately differ by codec
            counts = {cat: dc for cat, (dc, _db) in delta.items() if dc}
            return sigs, counts

        return asyncio.run(scenario())

    combos = [(wv, co) for wv, co, cache in _WIRE_AXES if cache]
    baseline_sigs, baseline_counts = one_combo(*combos[0])
    assert any(s is not None for s in baseline_sigs), "fixture must compose something"
    assert baseline_counts.get("bcp_probe", 0) > 0
    for wire_version, coalesce in combos[1:]:
        sigs, counts = one_combo(wire_version, coalesce)
        assert sigs == baseline_sigs, (wire_version, coalesce)
        assert counts == baseline_counts, (wire_version, coalesce)


def test_directory_cache_changes_routing_charges_not_selections():
    """The directory tier's entire ledger effect must be the discovery
    plane: identical selections and identical bcp_* books, strictly
    fewer ``dht_route`` charges, and the saved work visible as
    ``dir_cache_hit`` entries."""

    shared = {}

    def one_pass(dir_cache):
        async def scenario():
            cluster = LiveCluster(
                _parity_config(
                    distributed=True,
                    # fan-out off for count determinism (see above); the
                    # positive/negative caches are the axis under test
                    directory_tier=DirectoryTierConfig(
                        enabled=dir_cache, hot_threshold=0.0
                    ),
                ),
                scenario=shared.get("scenario"),
            )
            if "scenario" not in shared:
                shared["scenario"] = cluster.scenario
                shared["requests"] = cluster.scenario.requests.batch(6)
            async with cluster:
                snap = cluster.ledger.snapshot()
                results = []
                for r in shared["requests"]:
                    results.append(await cluster.compose(r, confirm=False, timeout=60))
                delta = cluster.ledger.delta_since(snap)
            assert cluster.errors() == []
            assert cluster.shared_guard is not None
            assert list(cluster.shared_guard.violations) == []
            sigs = [r.best.signature() if r.success else None for r in results]
            counts = {cat: dc for cat, (dc, _db) in delta.items() if dc}
            return sigs, counts

        return asyncio.run(scenario())

    on_sigs, on_counts = one_pass(True)
    off_sigs, off_counts = one_pass(False)
    assert any(s is not None for s in on_sigs), "fixture must compose something"
    assert on_sigs == off_sigs
    for cat in ("bcp_probe", "bcp_ack", "bcp_failure"):
        assert on_counts.get(cat, 0) == off_counts.get(cat, 0), cat
    # the headline: cached lookups really skip the DHT routing work
    assert on_counts.get("dht_route", 0) < off_counts.get("dht_route", 0)
    assert on_counts.get("dir_cache_hit", 0) > 0
    assert "dir_cache_hit" not in off_counts


def test_tcp_cluster_survives_peer_kill():
    async def scenario():
        fast = RetryPolicy(timeout=0.3, retries=2, backoff=0.02)
        cluster = LiveCluster(
            _parity_config(transport="tcp", probe_retry=fast, control_retry=fast)
        )
        async with cluster:
            gen = cluster.scenario.requests
            baseline = await cluster.compose(gen.next_request(source=1, dest=2), timeout=60)

            cluster.kill_peer(0)  # registry still routes probes at the corpse

            after = [
                await cluster.compose(gen.next_request(source=3, dest=4), timeout=60)
                for _ in range(3)
            ]
            stats = cluster.rpc_stats()
            errors = cluster.errors()
            failures = cluster.rpc_failures()
        return baseline, after, stats, errors, failures

    baseline, after, stats, errors, failures = asyncio.run(scenario())
    assert errors == []
    assert baseline.success
    # at least one composition completes end-to-end despite the dead peer
    assert any(r.success for r in after)
    # the kill is only a real test if probes actually hit the corpse —
    # they fail fast (peer_down sees the killed transport, 0 attempts)
    # instead of burning the retry/backoff budget per hop
    assert any(f.peer == 0 for f in failures)
    assert all(f.attempts == 0 for f in failures if f.peer == 0)
