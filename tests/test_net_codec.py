"""Round-trip and rejection tests for the live-runtime wire codec."""

import struct
from fractions import Fraction

import pytest

from repro.core.bcp import BCPConfig
from repro.core.probe import Probe
from repro.core.qos import QoSRequirement, QoSVector
from repro.core.resources import ResourceVector
from repro.net import codec
from repro.net.codec import (
    MAX_FRAME,
    SUPPORTED_WIRE_VERSIONS,
    WIRE_VERSION,
    WIRE_VERSION_BINARY,
    CodecError,
    FrameReader,
    decode_frame,
    encode_frame,
    from_wire,
    to_wire,
)
from repro.services.component import QualitySpec
from repro.workload.scenarios import simulation_testbed


@pytest.fixture(scope="module")
def scenario():
    return simulation_testbed(
        n_ip=80, n_peers=12, n_functions=6, bcp_config=BCPConfig(budget=24), seed=5
    )


@pytest.fixture(scope="module")
def request_obj(scenario):
    return scenario.requests.next_request()


@pytest.fixture(scope="module")
def service_graph(scenario):
    # a real composed graph, so assignment metadata comes from the registry
    for _ in range(10):
        req = scenario.requests.next_request()
        result = scenario.net.bcp.compose(req, confirm=False)
        if result.success:
            return result.best
    pytest.fail("no composition succeeded while building the fixture")


def roundtrip(obj, version=WIRE_VERSION):
    return decode_frame(encode_frame(obj, version))


@pytest.fixture(params=SUPPORTED_WIRE_VERSIONS, ids=lambda v: f"v{v}")
def version(request):
    return request.param


class TestRoundTrips:
    """decode(encode(x)) == x for every registered type, both versions."""

    def test_primitives_and_containers(self, version):
        doc = {"a": [1, 2.5, "x", None, True], "b": {"nested": [[]]}}
        assert roundtrip(doc, version) == doc

    def test_qos_vector(self, version):
        v = QoSVector({"delay": 0.25, "loss": 0.01})
        assert roundtrip(v, version) == v

    def test_qos_requirement(self, version):
        r = QoSRequirement({"delay": 1.5, "loss": 0.05})
        assert roundtrip(r, version) == r

    def test_resource_vector(self, version):
        r = ResourceVector({"cpu": 4.0, "memory": 128.0})
        assert roundtrip(r, version) == r

    def test_quality_spec(self, version):
        q = QualitySpec(frozenset({"mp3", "wav"}))
        assert roundtrip(q, version) == q

    def test_fraction_exact(self, version):
        f = Fraction(7, 24)
        out = roundtrip(f, version)
        assert out == f and isinstance(out, Fraction)

    def test_fraction_arithmetic_after_decode(self, version):
        # trusted v2 reconstruction must yield a fully functional Fraction
        f = roundtrip(Fraction(7, 24), version)
        assert f + Fraction(17, 24) == 1
        assert f / 7 == Fraction(1, 24)

    def test_fraction_bigint(self, version):
        # deep credit splits overflow int64; v2 has a bigint escape hatch
        f = Fraction(2**80 + 1, 3**60)
        assert roundtrip(f, version) == f

    def test_service_metadata(self, scenario, version):
        fn = scenario.net.registry.functions()[0]
        meta = scenario.net.registry.lookup(fn, origin_peer=0).components[0]
        assert roundtrip(meta, version) == meta

    def test_component_spec(self, scenario, version):
        spec = scenario.population[0]
        assert roundtrip(spec, version) == spec

    def test_function_graph(self, request_obj, version):
        g = request_obj.function_graph
        out = roundtrip(g, version)
        assert out == g
        # trusted ctor: the lazy adjacency maps must still materialize
        assert out.sources() == g.sources() and out.sinks() == g.sinks()

    def test_composite_request(self, request_obj, version):
        assert roundtrip(request_obj, version) == request_obj

    def test_service_graph(self, service_graph, version):
        assert roundtrip(service_graph, version) == service_graph
        assert roundtrip(service_graph, version).signature() == service_graph.signature()

    def test_root_probe(self, request_obj, version):
        p = Probe.initial(request_obj, budget=16)
        assert roundtrip(p, version) == p

    def test_mid_path_probe(self, scenario, request_obj, service_graph, version):
        root = Probe.initial(request_obj, budget=16)
        fn = service_graph.pattern.functions[0]
        meta = service_graph.assignment[fn]
        child = root.spawn(
            function=fn,
            component=meta,
            graph=root.graph,
            applied_swaps=root.applied_swaps,
            qos=QoSVector({"delay": 0.1, "loss": 0.001}),
            budget=4,
            elapsed=0.123,
        )
        assert roundtrip(child, version) == child
        assert roundtrip(child, version).dedup_key() == child.dedup_key()

    def test_every_message_type(self, scenario, request_obj, service_graph, version):
        probe = Probe.initial(request_obj, budget=8)
        fn = service_graph.pattern.functions[0]
        meta = service_graph.assignment[fn]
        messages = [
            codec.ComposeBegin(1, request_obj, 16, True),
            codec.DiscoveryReport(1, 0.125),
            codec.ProbeTransfer(
                1, probe, fn, meta, request_obj.function_graph,
                (("F001", "F002"),), 4, 0.05, Fraction(1, 3),
            ),
            codec.FinalProbe(1, probe, Fraction(2, 5)),
            codec.CreditReturn(1, Fraction(1, 6), "pruned"),
            codec.SessionConfirm(1, ((1, "comp", 7), (1, "link", -1, 7))),
            codec.SessionRelease(1, ((1, "comp", 7),)),
            codec.ComposeResult(
                1, True, service_graph, QoSVector({"delay": 0.2}), 1.5,
                None, 42, 7, 0.9, {"discovery": 0.1}, ((1, "comp", 7),),
            ),
            codec.MaintenancePing(1, 3),
            codec.RegisterComponent(scenario.population[0]),
            codec.LookupRequest("F001", 4),
        ]
        for msg in messages:
            assert roundtrip(msg, version) == msg, type(msg).__name__

    def test_cross_version_equality(self, request_obj):
        # the two encodings must reconstruct indistinguishable objects
        probe = Probe.initial(request_obj, budget=8)
        msg = codec.FinalProbe(1, probe, Fraction(1, 2))
        assert roundtrip(msg, WIRE_VERSION) == roundtrip(msg, WIRE_VERSION_BINARY)


class TestBinaryFormat:
    """v2-specific properties: back-references, size, damage rejection."""

    @staticmethod
    def _frame(payload: bytes) -> bytes:
        return struct.pack(">2sBI", b"SN", WIRE_VERSION_BINARY, len(payload)) + payload

    def test_backrefs_shrink_repeated_objects(self, request_obj):
        once = len(encode_frame([request_obj], WIRE_VERSION_BINARY))
        twice = len(encode_frame([request_obj, request_obj], WIRE_VERSION_BINARY))
        assert twice - once < 8  # second occurrence is a table reference

    def test_backrefs_preserve_identity(self, request_obj):
        out = decode_frame(encode_frame([request_obj, request_obj], WIRE_VERSION_BINARY))
        assert out[0] == request_obj and out[0] is out[1]

    def test_binary_smaller_than_json(self, request_obj):
        probe = Probe.initial(request_obj, budget=8)
        msg = codec.FinalProbe(1, probe, Fraction(1, 2))
        v1 = encode_frame(msg, WIRE_VERSION)
        v2 = encode_frame(msg, WIRE_VERSION_BINARY)
        assert len(v2) < len(v1)

    def test_truncated_binary_payload(self):
        frame = encode_frame({"key": [1, 2, 3]}, WIRE_VERSION_BINARY)
        payload = frame[7:-1]  # drop the last payload byte, fix the header
        with pytest.raises(CodecError, match="truncated binary payload"):
            decode_frame(self._frame(payload))

    def test_trailing_bytes_inside_payload(self):
        payload = encode_frame({"x": 1}, WIRE_VERSION_BINARY)[7:] + b"\x00"
        with pytest.raises(CodecError, match="trailing bytes inside"):
            decode_frame(self._frame(payload))

    def test_unknown_value_tag(self):
        with pytest.raises(CodecError, match="unknown binary value tag"):
            decode_frame(self._frame(b"\xff"))

    def test_unknown_type_id(self):
        with pytest.raises(CodecError, match="unknown binary type id"):
            decode_frame(self._frame(b"\x0f\xfe"))

    def test_dangling_string_backref(self):
        # low indices are the protocol-static table; 0xFFFF is unassigned
        with pytest.raises(CodecError, match="dangling string back-reference"):
            decode_frame(self._frame(b"\x0a\xff\xff"))

    def test_dangling_object_backref(self):
        with pytest.raises(CodecError, match="dangling object back-reference"):
            decode_frame(self._frame(b"\x10\x00\x00"))

    def test_non_string_key_refused_at_encode(self):
        with pytest.raises(CodecError, match="non-string"):
            encode_frame({1: "x"}, WIRE_VERSION_BINARY)

    def test_unencodable_type_refused(self):
        with pytest.raises(CodecError, match="not wire-encodable"):
            encode_frame({"x": object()}, WIRE_VERSION_BINARY)


class TestRejection:
    def test_unknown_version(self):
        frame = bytearray(encode_frame({"x": 1}))
        frame[2] = max(SUPPORTED_WIRE_VERSIONS) + 1
        with pytest.raises(CodecError, match="version"):
            decode_frame(bytes(frame))

    def test_bad_magic(self):
        frame = b"XX" + encode_frame({"x": 1})[2:]
        with pytest.raises(CodecError, match="magic"):
            decode_frame(frame)

    def test_truncated_header(self):
        with pytest.raises(CodecError, match="truncated frame header"):
            decode_frame(b"SN\x01")

    def test_truncated_payload(self):
        frame = encode_frame({"x": 1})
        with pytest.raises(CodecError, match="truncated frame payload"):
            decode_frame(frame[:-2])

    def test_trailing_bytes(self):
        with pytest.raises(CodecError, match="trailing"):
            decode_frame(encode_frame({"x": 1}) + b"!")

    def test_oversize_declared_length(self):
        header = struct.pack(">2sBI", b"SN", WIRE_VERSION, MAX_FRAME + 1)
        with pytest.raises(CodecError, match="exceeds"):
            decode_frame(header)

    def test_oversize_payload_refused_at_encode(self):
        with pytest.raises(CodecError, match="exceeds"):
            encode_frame({"blob": "x" * (MAX_FRAME + 1)})

    def test_unknown_tag(self):
        frame = encode_frame({"x": 1})
        poisoned = frame[: struct.calcsize(">2sBI")] + frame[struct.calcsize(">2sBI"):]
        doc = b'{"__w":"no-such-tag","p":{}}'
        header = struct.pack(">2sBI", b"SN", WIRE_VERSION, len(doc))
        with pytest.raises(CodecError, match="unknown wire type"):
            decode_frame(header + doc)
        assert decode_frame(poisoned) == {"x": 1}  # sanity: original intact

    def test_bad_payload_for_known_tag(self):
        doc = b'{"__w":"frac","p":{"bogus":1}}'
        header = struct.pack(">2sBI", b"SN", WIRE_VERSION, len(doc))
        with pytest.raises(CodecError, match="bad payload"):
            decode_frame(header + doc)

    def test_unencodable_type(self):
        with pytest.raises(CodecError, match="not wire-encodable"):
            to_wire(object())

    def test_reserved_key(self):
        with pytest.raises(CodecError, match="reserved"):
            to_wire({"__w": "sneaky"})

    def test_non_string_key(self):
        with pytest.raises(CodecError, match="non-string"):
            to_wire({1: "x"})

    def test_undecodable_json(self):
        doc = b"\xff\xfe not json"
        header = struct.pack(">2sBI", b"SN", WIRE_VERSION, len(doc))
        with pytest.raises(CodecError, match="undecodable"):
            decode_frame(header + doc)


class TestFrameReader:
    def test_single_byte_feeds(self):
        frames = encode_frame({"n": 1}) + encode_frame({"n": 2})
        reader = FrameReader()
        out = []
        for i in range(len(frames)):
            out.extend(reader.feed(frames[i : i + 1]))
        assert out == [{"n": 1}, {"n": 2}]
        assert reader.pending_bytes == 0

    def test_mixed_versions_on_one_stream(self):
        # per-frame auto-detection: a stream may interleave v1 and v2
        frames = (
            encode_frame({"n": 0}, WIRE_VERSION)
            + encode_frame({"n": 1}, WIRE_VERSION_BINARY)
            + encode_frame({"n": 2}, WIRE_VERSION)
            + encode_frame({"n": 3}, WIRE_VERSION_BINARY)
        )
        reader = FrameReader()
        mid = len(frames) // 2 + 1
        out = reader.feed(frames[:mid]) + reader.feed(frames[mid:])
        assert [m["n"] for m in out] == [0, 1, 2, 3]
        assert reader.pending_bytes == 0

    def test_burst_of_many_frames(self):
        # the offset-cursor path: one big burst must come back intact
        burst = b"".join(
            encode_frame({"n": i, "pad": "x" * 64}, WIRE_VERSION_BINARY)
            for i in range(2000)
        )
        reader = FrameReader()
        out = reader.feed(burst)
        assert [m["n"] for m in out] == list(range(2000))
        assert reader.pending_bytes == 0

    def test_messages_split_across_chunks(self):
        frames = b"".join(encode_frame({"n": i}) for i in range(5))
        reader = FrameReader()
        mid = len(frames) // 2 + 3
        out = reader.feed(frames[:mid]) + reader.feed(frames[mid:])
        assert [m["n"] for m in out] == list(range(5))

    def test_header_error_poisons_stream(self):
        reader = FrameReader()
        with pytest.raises(CodecError):
            reader.feed(b"XXXXXXXXXX")

    def test_partial_header_waits(self):
        reader = FrameReader()
        assert reader.feed(b"SN") == []
        assert reader.pending_bytes == 2


def test_from_wire_tolerates_plain_documents():
    assert from_wire({"a": [1, {"b": 2}]}) == {"a": [1, {"b": 2}]}
