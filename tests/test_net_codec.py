"""Round-trip and rejection tests for the live-runtime wire codec."""

import struct
from fractions import Fraction

import pytest

from repro.core.bcp import BCPConfig
from repro.core.probe import Probe
from repro.core.qos import QoSRequirement, QoSVector
from repro.core.resources import ResourceVector
from repro.net import codec
from repro.net.codec import (
    MAX_FRAME,
    WIRE_VERSION,
    CodecError,
    FrameReader,
    decode_frame,
    encode_frame,
    from_wire,
    to_wire,
)
from repro.services.component import QualitySpec
from repro.workload.scenarios import simulation_testbed


@pytest.fixture(scope="module")
def scenario():
    return simulation_testbed(
        n_ip=80, n_peers=12, n_functions=6, bcp_config=BCPConfig(budget=24), seed=5
    )


@pytest.fixture(scope="module")
def request_obj(scenario):
    return scenario.requests.next_request()


@pytest.fixture(scope="module")
def service_graph(scenario):
    # a real composed graph, so assignment metadata comes from the registry
    for _ in range(10):
        req = scenario.requests.next_request()
        result = scenario.net.bcp.compose(req, confirm=False)
        if result.success:
            return result.best
    pytest.fail("no composition succeeded while building the fixture")


def roundtrip(obj):
    return decode_frame(encode_frame(obj))


class TestRoundTrips:
    """from_wire(to_wire(x)) == x for every registered type."""

    def test_primitives_and_containers(self):
        doc = {"a": [1, 2.5, "x", None, True], "b": {"nested": [[]]}}
        assert roundtrip(doc) == doc

    def test_qos_vector(self):
        v = QoSVector({"delay": 0.25, "loss": 0.01})
        assert roundtrip(v) == v

    def test_qos_requirement(self):
        r = QoSRequirement({"delay": 1.5, "loss": 0.05})
        assert roundtrip(r) == r

    def test_resource_vector(self):
        r = ResourceVector({"cpu": 4.0, "memory": 128.0})
        assert roundtrip(r) == r

    def test_quality_spec(self):
        q = QualitySpec(frozenset({"mp3", "wav"}))
        assert roundtrip(q) == q

    def test_fraction_exact(self):
        f = Fraction(7, 24)
        out = roundtrip(f)
        assert out == f and isinstance(out, Fraction)

    def test_service_metadata(self, scenario):
        fn = scenario.net.registry.functions()[0]
        meta = scenario.net.registry.lookup(fn, origin_peer=0).components[0]
        assert roundtrip(meta) == meta

    def test_component_spec(self, scenario):
        spec = scenario.population[0]
        assert roundtrip(spec) == spec

    def test_function_graph(self, request_obj):
        g = request_obj.function_graph
        assert roundtrip(g) == g

    def test_composite_request(self, request_obj):
        assert roundtrip(request_obj) == request_obj

    def test_service_graph(self, service_graph):
        assert roundtrip(service_graph) == service_graph
        assert roundtrip(service_graph).signature() == service_graph.signature()

    def test_root_probe(self, request_obj):
        p = Probe.initial(request_obj, budget=16)
        assert roundtrip(p) == p

    def test_mid_path_probe(self, scenario, request_obj, service_graph):
        root = Probe.initial(request_obj, budget=16)
        fn = service_graph.pattern.functions[0]
        meta = service_graph.assignment[fn]
        child = root.spawn(
            function=fn,
            component=meta,
            graph=root.graph,
            applied_swaps=root.applied_swaps,
            qos=QoSVector({"delay": 0.1, "loss": 0.001}),
            budget=4,
            elapsed=0.123,
        )
        assert roundtrip(child) == child
        assert roundtrip(child).dedup_key() == child.dedup_key()

    def test_every_message_type(self, scenario, request_obj, service_graph):
        probe = Probe.initial(request_obj, budget=8)
        fn = service_graph.pattern.functions[0]
        meta = service_graph.assignment[fn]
        messages = [
            codec.ComposeBegin(1, request_obj, 16, True),
            codec.DiscoveryReport(1, 0.125),
            codec.ProbeTransfer(
                1, probe, fn, meta, request_obj.function_graph,
                (("F001", "F002"),), 4, 0.05, Fraction(1, 3),
            ),
            codec.FinalProbe(1, probe, Fraction(2, 5)),
            codec.CreditReturn(1, Fraction(1, 6), "pruned"),
            codec.SessionConfirm(1, ((1, "comp", 7), (1, "link", -1, 7))),
            codec.SessionRelease(1, ((1, "comp", 7),)),
            codec.ComposeResult(
                1, True, service_graph, QoSVector({"delay": 0.2}), 1.5,
                None, 42, 7, 0.9, {"discovery": 0.1}, ((1, "comp", 7),),
            ),
            codec.MaintenancePing(1, 3),
            codec.RegisterComponent(scenario.population[0]),
            codec.LookupRequest("F001", 4),
        ]
        for msg in messages:
            assert roundtrip(msg) == msg, type(msg).__name__


class TestRejection:
    def test_unknown_version(self):
        frame = bytearray(encode_frame({"x": 1}))
        frame[2] = WIRE_VERSION + 1
        with pytest.raises(CodecError, match="version"):
            decode_frame(bytes(frame))

    def test_bad_magic(self):
        frame = b"XX" + encode_frame({"x": 1})[2:]
        with pytest.raises(CodecError, match="magic"):
            decode_frame(frame)

    def test_truncated_header(self):
        with pytest.raises(CodecError, match="truncated frame header"):
            decode_frame(b"SN\x01")

    def test_truncated_payload(self):
        frame = encode_frame({"x": 1})
        with pytest.raises(CodecError, match="truncated frame payload"):
            decode_frame(frame[:-2])

    def test_trailing_bytes(self):
        with pytest.raises(CodecError, match="trailing"):
            decode_frame(encode_frame({"x": 1}) + b"!")

    def test_oversize_declared_length(self):
        header = struct.pack(">2sBI", b"SN", WIRE_VERSION, MAX_FRAME + 1)
        with pytest.raises(CodecError, match="exceeds"):
            decode_frame(header)

    def test_oversize_payload_refused_at_encode(self):
        with pytest.raises(CodecError, match="exceeds"):
            encode_frame({"blob": "x" * (MAX_FRAME + 1)})

    def test_unknown_tag(self):
        frame = encode_frame({"x": 1})
        poisoned = frame[: struct.calcsize(">2sBI")] + frame[struct.calcsize(">2sBI"):]
        doc = b'{"__w":"no-such-tag","p":{}}'
        header = struct.pack(">2sBI", b"SN", WIRE_VERSION, len(doc))
        with pytest.raises(CodecError, match="unknown wire type"):
            decode_frame(header + doc)
        assert decode_frame(poisoned) == {"x": 1}  # sanity: original intact

    def test_bad_payload_for_known_tag(self):
        doc = b'{"__w":"frac","p":{"bogus":1}}'
        header = struct.pack(">2sBI", b"SN", WIRE_VERSION, len(doc))
        with pytest.raises(CodecError, match="bad payload"):
            decode_frame(header + doc)

    def test_unencodable_type(self):
        with pytest.raises(CodecError, match="not wire-encodable"):
            to_wire(object())

    def test_reserved_key(self):
        with pytest.raises(CodecError, match="reserved"):
            to_wire({"__w": "sneaky"})

    def test_non_string_key(self):
        with pytest.raises(CodecError, match="non-string"):
            to_wire({1: "x"})

    def test_undecodable_json(self):
        doc = b"\xff\xfe not json"
        header = struct.pack(">2sBI", b"SN", WIRE_VERSION, len(doc))
        with pytest.raises(CodecError, match="undecodable"):
            decode_frame(header + doc)


class TestFrameReader:
    def test_single_byte_feeds(self):
        frames = encode_frame({"n": 1}) + encode_frame({"n": 2})
        reader = FrameReader()
        out = []
        for i in range(len(frames)):
            out.extend(reader.feed(frames[i : i + 1]))
        assert out == [{"n": 1}, {"n": 2}]
        assert reader.pending_bytes == 0

    def test_messages_split_across_chunks(self):
        frames = b"".join(encode_frame({"n": i}) for i in range(5))
        reader = FrameReader()
        mid = len(frames) // 2 + 3
        out = reader.feed(frames[:mid]) + reader.feed(frames[mid:])
        assert [m["n"] for m in out] == list(range(5))

    def test_header_error_poisons_stream(self):
        reader = FrameReader()
        with pytest.raises(CodecError):
            reader.feed(b"XXXXXXXXXX")

    def test_partial_header_waits(self):
        reader = FrameReader()
        assert reader.feed(b"SN") == []
        assert reader.pending_bytes == 2


def test_from_wire_tolerates_plain_documents():
    assert from_wire({"a": [1, {"b": 2}]}) == {"a": [1, {"b": 2}]}
