"""Tests for the request specification layer (JSON/XML → CompositeRequest)."""

import json

import pytest

from repro.core.qos import additive_to_loss
from repro.spec import (
    SpecError,
    compile_spec,
    load_spec,
    parse_json,
    parse_xml,
    spec_from_request,
)


def base_spec():
    return {
        "name": "mobile-news-stream",
        "functions": ["downscale", "stock_ticker", "requantify"],
        "qos": {"delay_ms": 800, "loss_rate": 0.05},
        "bandwidth_mbps": 1.2,
        "source": 0,
        "dest": 42,
        "duration_s": 1800,
        "failure_req": 0.05,
    }


class TestCompileSpec:
    def test_minimal_linear_chain(self):
        spec = compile_spec(base_spec())
        assert spec.name == "mobile-news-stream"
        assert spec.function_graph.is_linear()
        assert spec.function_graph.topological_order() == [
            "downscale", "stock_ticker", "requantify",
        ]

    def test_units_converted(self):
        spec = compile_spec(base_spec())
        assert spec.qos.bounds["delay"] == pytest.approx(0.8)
        assert additive_to_loss(spec.qos.bounds["loss"]) == pytest.approx(0.05)

    def test_compile_to_request(self):
        request = compile_spec(base_spec()).compile()
        assert request.source_peer == 0 and request.dest_peer == 42
        assert request.bandwidth == pytest.approx(1.2)
        assert request.duration == pytest.approx(1800)

    def test_explicit_edges_make_dag(self):
        spec = dict(base_spec())
        spec["functions"] = ["a", "b", "c", "d"]
        spec["edges"] = [["a", "b"], ["a", "c"], ["b", "d"], ["c", "d"]]
        compiled = compile_spec(spec)
        assert not compiled.function_graph.is_linear()
        assert len(compiled.function_graph.branches()) == 2

    def test_commutations_carried(self):
        spec = dict(base_spec())
        spec["commutations"] = [["stock_ticker", "requantify"]]
        compiled = compile_spec(spec)
        assert len(compiled.function_graph.commutations) == 1

    def test_conditional_annotation(self):
        spec = dict(base_spec())
        spec["functions"] = ["a", "b", "c", "d"]
        spec["edges"] = [["a", "b"], ["a", "c"], ["b", "d"], ["c", "d"]]
        spec["conditional"] = {"a": {"b": 0.7, "c": 0.3}}
        compiled = compile_spec(spec)
        assert compiled.conditional is not None
        assert compiled.conditional.probability("a", "b") == pytest.approx(0.7)

    def test_defaults_applied(self):
        spec = {"functions": ["f"], "source": 0, "dest": 1}
        compiled = compile_spec(spec)
        assert compiled.bandwidth_mbps == 0.5
        assert compiled.duration_s == 600.0

    def test_unknown_key_rejected(self):
        spec = dict(base_spec())
        spec["bandwith_mbps"] = 1.0  # typo
        with pytest.raises(SpecError, match="unknown spec keys"):
            compile_spec(spec)

    def test_unknown_qos_key_rejected(self):
        spec = dict(base_spec())
        spec["qos"] = {"jitter_ms": 5}
        with pytest.raises(SpecError, match="unknown qos keys"):
            compile_spec(spec)

    def test_same_endpoints_rejected(self):
        spec = dict(base_spec())
        spec["dest"] = spec["source"]
        with pytest.raises(SpecError):
            compile_spec(spec)

    def test_bad_graph_rejected(self):
        spec = dict(base_spec())
        spec["edges"] = [["downscale", "ghost"]]
        with pytest.raises(SpecError, match="invalid function graph"):
            compile_spec(spec)

    def test_bad_conditional_rejected(self):
        spec = dict(base_spec())
        spec["conditional"] = {"downscale": {"stock_ticker": 0.5}}
        with pytest.raises(SpecError, match="conditional"):
            compile_spec(spec)

    def test_bad_values_rejected(self):
        for key, value in (
            ("bandwidth_mbps", -1.0),
            ("duration_s", 0.0),
            ("failure_req", 2.0),
        ):
            spec = dict(base_spec())
            spec[key] = value
            with pytest.raises(SpecError):
                compile_spec(spec)

    def test_round_trip_through_serialiser(self):
        request = compile_spec(base_spec()).compile()
        spec2 = spec_from_request(request, name="rt")
        request2 = compile_spec(spec2).compile()
        assert request2.function_graph.edges == request.function_graph.edges
        assert request2.qos.bounds == pytest.approx(request.qos.bounds)
        assert request2.bandwidth == pytest.approx(request.bandwidth)


class TestJsonParser:
    def test_parse_json(self):
        spec = parse_json(json.dumps(base_spec()))
        assert spec.source == 0

    def test_invalid_json_rejected(self):
        with pytest.raises(SpecError, match="invalid JSON"):
            parse_json("{not json")


XML_DOC = """
<composite-request name="mobile-news-stream">
  <function name="downscale"/>
  <function name="stock_ticker"/>
  <function name="requantify"/>
  <edge from="downscale" to="stock_ticker"/>
  <edge from="stock_ticker" to="requantify"/>
  <commutation a="stock_ticker" b="requantify"/>
  <qos delay-ms="800" loss-rate="0.05"/>
  <stream bandwidth-mbps="1.2" source="0" dest="42" duration-s="1800"/>
</composite-request>
"""


class TestXmlParser:
    def test_parse_xml(self):
        spec = parse_xml(XML_DOC)
        assert spec.name == "mobile-news-stream"
        assert spec.qos.bounds["delay"] == pytest.approx(0.8)
        assert len(spec.function_graph.commutations) == 1
        assert spec.bandwidth_mbps == pytest.approx(1.2)

    def test_wrong_root_rejected(self):
        with pytest.raises(SpecError, match="composite-request"):
            parse_xml("<request/>")

    def test_missing_stream_rejected(self):
        with pytest.raises(SpecError, match="stream"):
            parse_xml("<composite-request><function name='f'/></composite-request>")

    def test_invalid_xml_rejected(self):
        with pytest.raises(SpecError, match="invalid XML"):
            parse_xml("<unclosed")

    def test_conditional_with_implied_remainder(self):
        doc = """
        <composite-request>
          <function name="a"/><function name="b"/>
          <function name="c"/><function name="d"/>
          <edge from="a" to="b"/><edge from="a" to="c"/>
          <edge from="b" to="d"/><edge from="c" to="d"/>
          <conditional fork="a"><branch to="b" probability="0.7"/></conditional>
          <stream source="0" dest="9"/>
        </composite-request>
        """
        spec = parse_xml(doc)
        assert spec.conditional.probability("a", "c") == pytest.approx(0.3)


class TestLoadSpec:
    def test_load_json_file(self, tmp_path):
        p = tmp_path / "req.json"
        p.write_text(json.dumps(base_spec()))
        assert load_spec(p).dest == 42

    def test_load_xml_file(self, tmp_path):
        p = tmp_path / "req.xml"
        p.write_text(XML_DOC)
        assert load_spec(p).dest == 42

    def test_unknown_extension_rejected(self, tmp_path):
        p = tmp_path / "req.yaml"
        p.write_text("functions: [f]")
        with pytest.raises(SpecError, match="unsupported"):
            load_spec(p)


class TestEndToEnd:
    def test_spec_to_composition(self, populated_net):
        net, _ = populated_net
        fns = net.registry.functions()[:2]
        spec = {
            "functions": fns,
            "qos": {"delay_ms": 3000, "loss_rate": 0.2},
            "source": 0,
            "dest": 5,
        }
        request = compile_spec(spec).compile()
        result = net.compose(request, budget=16)
        assert result is not None  # composes without error (success depends on world)
