"""Unit tests for overlay construction (mesh / power-law / random / WAN)."""

import math

import networkx as nx
import numpy as np
import pytest

from repro.topology.inet import TopologyError, generate_ip_network
from repro.topology.overlay import (
    mesh_overlay,
    peer_delay_matrix,
    power_law_overlay,
    random_overlay,
    select_peers,
    wan_overlay,
)


@pytest.fixture(scope="module")
def ip():
    return generate_ip_network(150, rng=np.random.default_rng(11))


class TestSelectPeers:
    def test_count_and_uniqueness(self, ip):
        peers = select_peers(ip, 30, rng=np.random.default_rng(0))
        assert len(peers) == 30 and len(set(peers)) == 30

    def test_too_many_peers_rejected(self, ip):
        with pytest.raises(TopologyError):
            select_peers(ip, 10_000, rng=np.random.default_rng(0))


class TestPeerDelayMatrix:
    def test_shape_symmetry_zero_diagonal(self, ip):
        routers = select_peers(ip, 10, rng=np.random.default_rng(1))
        m = peer_delay_matrix(ip, routers)
        assert m.shape == (10, 10)
        assert np.allclose(m, m.T)
        assert np.allclose(np.diag(m), 0.0)
        assert np.isfinite(m).all()


def _common_overlay_checks(ov, n):
    assert ov.n_peers == n
    assert nx.is_connected(ov.graph)
    for u, v, d in ov.graph.edges(data=True):
        assert d["delay"] >= 0
        assert d["bandwidth"] > 0
        assert d["loss_add"] >= 0
    # routed latency is symmetric and triangle-consistent with edges
    a, b = 0, n - 1
    assert ov.latency(a, b) == pytest.approx(ov.latency(b, a))
    assert ov.latency(a, a) == 0.0


class TestMeshOverlay:
    def test_structure(self, ip):
        ov = mesh_overlay(ip, 25, k=3, rng=np.random.default_rng(2))
        _common_overlay_checks(ov, 25)
        assert ov.kind == "mesh"
        # every peer has at least k neighbours requested (dedup may merge)
        assert min(dict(ov.graph.degree()).values()) >= 1

    def test_topological_awareness(self, ip):
        """Mesh neighbours should be latency-closer than average pairs."""
        ov = mesh_overlay(ip, 25, k=3, rng=np.random.default_rng(2))
        edge_delays = [d["delay"] for _, _, d in ov.graph.edges(data=True)]
        all_pairs = [
            ov.latency(a, b) for a in range(25) for b in range(a + 1, 25)
        ]
        assert np.mean(edge_delays) <= np.mean(all_pairs)

    def test_ip_mapping_present(self, ip):
        ov = mesh_overlay(ip, 10, k=2, rng=np.random.default_rng(3))
        assert set(ov.ip_of) == set(range(10))
        assert all(r in ip.nodes for r in ov.ip_of.values())


class TestPowerLawOverlay:
    def test_structure(self, ip):
        ov = power_law_overlay(ip, 30, m=2, rng=np.random.default_rng(4))
        _common_overlay_checks(ov, 30)
        assert ov.kind == "power-law"

    def test_hub_formation(self, ip):
        ov = power_law_overlay(ip, 60, m=2, rng=np.random.default_rng(4))
        degrees = np.array([d for _, d in ov.graph.degree()])
        assert degrees.max() >= 2 * np.median(degrees)

    def test_bad_m_rejected(self, ip):
        with pytest.raises(TopologyError):
            power_law_overlay(ip, 10, m=0, rng=np.random.default_rng(0))


class TestRandomOverlay:
    def test_structure(self, ip):
        ov = random_overlay(ip, 20, k=3, rng=np.random.default_rng(5))
        _common_overlay_checks(ov, 20)
        assert ov.kind == "random"


class TestWanOverlay:
    def test_full_mesh(self):
        ov = wan_overlay(20, rng=np.random.default_rng(6))
        assert ov.graph.number_of_edges() == 20 * 19 // 2
        _common_overlay_checks(ov, 20)
        assert ov.kind == "wan"
        assert ov.ip_of is None

    def test_regions_assigned(self):
        ov = wan_overlay(50, us_fraction=0.7, rng=np.random.default_rng(7))
        regions = nx.get_node_attributes(ov.graph, "region")
        assert set(regions.values()) <= {"US", "EU"}
        assert sum(1 for r in regions.values() if r == "US") > 20

    def test_transatlantic_slower_than_intra_us(self):
        ov = wan_overlay(80, rng=np.random.default_rng(8))
        regions = nx.get_node_attributes(ov.graph, "region")
        intra, inter = [], []
        for u, v, d in ov.graph.edges(data=True):
            if regions[u] == regions[v] == "US":
                intra.append(d["delay"])
            elif regions[u] != regions[v]:
                inter.append(d["delay"])
        assert np.mean(inter) > 1.5 * np.mean(intra)

    def test_min_peers_rejected(self):
        with pytest.raises(TopologyError):
            wan_overlay(1, rng=np.random.default_rng(0))


class TestLossModel:
    def test_path_loss_accumulates(self, ip):
        ov = mesh_overlay(ip, 15, k=3, rng=np.random.default_rng(9))
        a, b = 0, 14
        links = ov.router.links(a, b)
        total = sum(ov.link_loss_add(u, v) for u, v in links)
        assert ov.path_loss_add(a, b) == pytest.approx(total)

    def test_self_path_loss_zero(self, ip):
        ov = mesh_overlay(ip, 15, k=3, rng=np.random.default_rng(9))
        assert ov.path_loss_add(3, 3) == 0.0

    def test_longer_links_lossier(self):
        ov = wan_overlay(30, rng=np.random.default_rng(10))
        edges = list(ov.graph.edges(data=True))
        edges.sort(key=lambda e: e[2]["delay"])
        fast = np.mean([e[2]["loss_add"] for e in edges[:50]])
        slow = np.mean([e[2]["loss_add"] for e in edges[-50:]])
        assert slow > fast
