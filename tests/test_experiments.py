"""Smoke + shape tests for the experiment drivers (tiny configs)."""

import math

import pytest

from repro.experiments import (
    AblationConfig,
    Fig8Config,
    Fig9Config,
    Fig10Config,
    Fig11Config,
    HeldSessions,
    OverheadConfig,
    Series,
    ablate_commutations,
    ablate_soft_allocation,
    format_table,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_overhead,
)
from repro.core.resources import ResourcePool, ResourceVector


class TestHarness:
    def test_series_add(self):
        s = Series("x")
        s.add(1, 2.0)
        assert s.as_rows() == [(1.0, 2.0)]

    def test_format_table_alignment(self):
        a, b = Series("alpha"), Series("b")
        for x in (1, 2):
            a.add(x, x * 0.5)
            b.add(x, x * 2.0)
        table = format_table("x", [a, b])
        lines = table.splitlines()
        assert "alpha" in lines[0] and "b" in lines[0]
        assert len(lines) == 4

    def test_format_table_mismatched_x_rejected(self):
        a, b = Series("a"), Series("b")
        a.add(1, 1)
        b.add(2, 1)
        with pytest.raises(ValueError):
            format_table("x", [a, b])

    def test_format_table_nan_dash(self):
        s = Series("a")
        s.add(1, float("nan"))
        assert "-" in format_table("x", [s]).splitlines()[-1]

    def test_held_sessions_release_due(self, overlay):
        caps = {p: ResourceVector({"cpu": 10.0, "memory": 10.0}) for p in overlay.peers()}
        pool = ResourcePool(overlay, caps)
        pool.soft_allocate_peer("t1", 0, ResourceVector({"cpu": 5.0}))
        pool.confirm("t1")
        held = HeldSessions(pool)
        held.admit(["t1"], release_at=5.0)
        assert held.release_due(4.0) == 0
        assert pool.available(0).get("cpu") == 5.0
        assert held.release_due(5.0) == 1
        assert pool.available(0).get("cpu") == 10.0

    def test_held_sessions_release_all(self, overlay):
        caps = {p: ResourceVector({"cpu": 10.0, "memory": 10.0}) for p in overlay.peers()}
        pool = ResourcePool(overlay, caps)
        pool.soft_allocate_peer("t1", 0, ResourceVector({"cpu": 5.0}))
        held = HeldSessions(pool)
        held.admit(["t1"], release_at=math.inf)
        held.release_all()
        assert pool.available(0).get("cpu") == 10.0


TINY_FIG8 = Fig8Config(
    n_ip=120, n_peers=24, n_functions=8, workloads=(1, 3),
    duration=6, probing_fractions=(0.2,), max_budget=40, seed=0,
)


class TestFig8:
    def test_runs_and_shapes(self):
        result = run_fig8(TINY_FIG8)
        labels = [s.label for s in result.series]
        assert labels == ["probing-0.2", "optimal", "random", "static"]
        for s in result.series:
            assert list(s.x) == [1.0, 3.0]
            for y in s.y:
                assert 0.0 <= y <= 1.0

    def test_informed_beats_oblivious(self):
        result = run_fig8(TINY_FIG8)
        by_label = {s.label: s for s in result.series}
        # averaged over workloads, QoS-aware schemes beat the static one
        mean = lambda s: sum(s.y) / len(s.y)
        assert mean(by_label["probing-0.2"]) >= mean(by_label["static"])
        assert mean(by_label["optimal"]) >= mean(by_label["static"])

    def test_messages_tracked(self):
        result = run_fig8(TINY_FIG8)
        assert result.messages_per_request["probing-0.2"] > 0
        assert result.table()


class TestFig9:
    def test_recovery_reduces_visible_failures(self):
        cfg = Fig9Config(
            n_ip=120, n_peers=30, n_functions=8, duration_minutes=12,
            target_sessions=8, budget=32, seed=0,
        )
        result = run_fig9(cfg)
        without, with_rec = result.series
        assert without.label == "without recovery"
        assert sum(with_rec.y) <= sum(without.y)
        assert result.stats_with.failures >= 0
        assert result.table()

    def test_backups_maintained(self):
        cfg = Fig9Config(
            n_ip=120, n_peers=30, n_functions=8, duration_minutes=8,
            target_sessions=6, budget=32, seed=0,
        )
        result = run_fig9(cfg)
        assert result.mean_backups >= 0.0


class TestFig10:
    def test_setup_time_grows_with_functions(self):
        cfg = Fig10Config(n_peers=24, function_numbers=(2, 4), requests_per_point=6, seed=0)
        result = run_fig10(cfg)
        total = next(s for s in result.series if s.label.startswith("total"))
        assert total.y[0] < total.y[-1]
        assert all(y > 0 for y in total.y)

    def test_phases_sum_to_total(self):
        cfg = Fig10Config(n_peers=24, function_numbers=(3,), requests_per_point=6, seed=0)
        result = run_fig10(cfg)
        disc, comp, total = (s.y[0] for s in result.series)
        assert total == pytest.approx(disc + comp, rel=1e-6)


class TestFig11:
    def test_budget_sweep_shape(self):
        cfg = Fig11Config(n_peers=24, budgets=(4, 64), requests_per_point=6, seed=0)
        result = run_fig11(cfg)
        random_s, spider_s, optimal_s = result.series
        # more budget never hurts (same fixed request sample)
        assert spider_s.y[-1] <= spider_s.y[0] + 1e-9
        # optimal lower-bounds SpiderNet; random upper-bounds it (on average)
        assert optimal_s.y[-1] <= spider_s.y[-1] + 1e-6
        assert result.optimal_probes_mean > 0


class TestOverhead:
    def test_centralized_order_of_magnitude_worse(self):
        cfg = OverheadConfig(
            n_ip=120, n_peers=40, n_functions=10, duration=6, workload=2, seed=0
        )
        result = run_overhead(cfg)
        assert result.overhead_ratio > 5.0
        assert result.requests == 12
        assert result.table()

    def test_breakdowns_populated(self):
        cfg = OverheadConfig(
            n_ip=120, n_peers=30, n_functions=8, duration=4, workload=2, seed=0
        )
        result = run_overhead(cfg)
        assert result.bcp_breakdown["bcp_probe"] > 0
        assert result.centralized_breakdown["state_update"] > 0


class TestAblations:
    def test_commutation_ablation_runs(self):
        out = ablate_commutations(
            AblationConfig(n_ip=120, n_peers=24, n_functions=8, requests=8, budget=16)
        )
        assert "with_commutations" in out and "without_commutations" in out

    def test_soft_allocation_ablation_direction(self):
        out = ablate_soft_allocation(
            AblationConfig(n_ip=120, n_peers=24, n_functions=8, requests=16, budget=16)
        )
        assert out["soft_allocation_conflicted"] == 0.0
        assert out["no_soft_allocation_conflicted"] >= 0.0

    def test_adaptive_budget_ablation(self):
        from repro.experiments import ablate_adaptive_budget

        out = ablate_adaptive_budget(
            AblationConfig(n_ip=120, n_peers=24, n_functions=8, requests=12, budget=16)
        )
        assert 0.0 <= out["adaptive_success"] <= 1.0
        assert out["adaptive_mean_budget"] > 0
        assert out["fixed_budget"] >= 1
