"""Unit + property tests for backup-count (Eq. 2) and backup selection (§5.2)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.function_graph import FunctionGraph
from repro.core.qos import QoSRequirement, QoSVector
from repro.core.recovery import backup_count, bottleneck_order, select_backups
from repro.core.resources import ResourceVector
from repro.core.selection import CandidateGraph
from repro.core.service_graph import ServiceGraph
from repro.discovery.metadata import ServiceMetadata
from repro.services.component import QualitySpec


def meta(cid, fn, peer):
    return ServiceMetadata(
        component_id=cid,
        function=fn,
        peer=peer,
        qp=QoSVector({"delay": 0.01, "loss": 0.0}),
        resources=ResourceVector({"cpu": 10.0}),
        input_quality=QualitySpec(),
        output_quality=QualitySpec(),
    )


def sg(assignment_ids, peers):
    """Linear 3-function graph from (component ids, peers)."""
    fg = FunctionGraph.linear(["fa", "fb", "fc"])
    assignment = {
        fn: meta(cid, fn, peer)
        for fn, cid, peer in zip(["fa", "fb", "fc"], assignment_ids, peers)
    }
    return ServiceGraph(fg, assignment, source_peer=0, dest_peer=1)


def cand(assignment_ids, peers, cost=1.0):
    return CandidateGraph(
        graph=sg(assignment_ids, peers),
        qos=QoSVector({"delay": 0.1, "loss": 0.0}),
        cost=cost,
    )


class TestBackupCountEq2:
    def test_paper_formula_hand_case(self):
        # Σ q/qreq = 0.5 + 0.5 = 1.0; F/Freq = 0.05/0.05 = 1.0; U = 1
        qos = QoSVector({"delay": 0.5, "loss": 0.25})
        req = QoSRequirement({"delay": 1.0, "loss": 0.5})
        gamma = backup_count(qos, req, failure_prob=0.05, failure_req=0.05,
                             n_qualified=10, upper_bound=1.0)
        assert gamma == math.floor(1.0 * (1.0 + 1.0)) == 2

    def test_capped_by_c_minus_one(self):
        qos = QoSVector({"delay": 0.9})
        req = QoSRequirement({"delay": 1.0})
        gamma = backup_count(qos, req, 0.5, 0.01, n_qualified=3, upper_bound=5.0)
        assert gamma == 2

    def test_better_qos_fewer_backups(self):
        req = QoSRequirement({"delay": 1.0})
        good = backup_count(QoSVector({"delay": 0.1}), req, 0.01, 0.05, 100, 2.0)
        bad = backup_count(QoSVector({"delay": 0.9}), req, 0.01, 0.05, 100, 2.0)
        assert good <= bad

    def test_higher_failure_more_backups(self):
        req = QoSRequirement({"delay": 1.0})
        qos = QoSVector({"delay": 0.5})
        low = backup_count(qos, req, 0.01, 0.05, 100, 2.0)
        high = backup_count(qos, req, 0.20, 0.05, 100, 2.0)
        assert high > low

    def test_single_qualified_graph_no_backups(self):
        gamma = backup_count(
            QoSVector({"delay": 0.5}), QoSRequirement({"delay": 1.0}),
            0.5, 0.05, n_qualified=1,
        )
        assert gamma == 0

    def test_validation(self):
        qos, req = QoSVector({"delay": 0.5}), QoSRequirement({"delay": 1.0})
        with pytest.raises(ValueError):
            backup_count(qos, req, 0.5, 0.05, n_qualified=0)
        with pytest.raises(ValueError):
            backup_count(qos, req, 1.5, 0.05, n_qualified=5)
        with pytest.raises(ValueError):
            backup_count(qos, req, 0.5, 0.0, n_qualified=5)
        with pytest.raises(ValueError):
            backup_count(qos, req, 0.5, 0.05, n_qualified=5, upper_bound=-1)

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.01, max_value=1.0),
        st.integers(min_value=1, max_value=50),
        st.floats(min_value=0.0, max_value=5.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_gamma_bounds_and_monotonicity(self, q, f, freq, c, u):
        req = QoSRequirement({"delay": 1.0})
        gamma = backup_count(QoSVector({"delay": q}), req, f, freq, c, u)
        assert 0 <= gamma <= c - 1
        # worse QoS never decreases gamma
        worse = backup_count(QoSVector({"delay": min(q + 0.3, 1.3)}), req, f, freq, c, u)
        assert worse >= gamma


class TestBottleneckOrder:
    def test_sorted_by_failure_probability(self):
        graph = sg([1, 2, 3], [10, 11, 12])
        probs = {10: 0.1, 11: 0.5, 12: 0.3}
        order = bottleneck_order(graph, lambda p: probs[p])
        assert order == [2, 3, 1]

    def test_tie_breaks_by_component_id(self):
        graph = sg([3, 1, 2], [10, 11, 12])
        order = bottleneck_order(graph, lambda p: 0.1)
        assert order == [1, 2, 3]


class TestSelectBackups:
    def test_zero_count_empty(self):
        current = sg([1, 2, 3], [10, 11, 12])
        assert select_backups(current, [cand([4, 5, 6], [13, 14, 15])], 0, lambda p: 0.1) == []

    def test_current_graph_never_selected(self):
        current = sg([1, 2, 3], [10, 11, 12])
        pool = [cand([1, 2, 3], [10, 11, 12]), cand([4, 5, 6], [13, 14, 15])]
        out = select_backups(current, pool, 2, lambda p: 0.1)
        assert len(out) == 1
        assert out[0].graph.component_ids() == frozenset({4, 5, 6})

    def test_backup_excludes_bottleneck_peer(self):
        current = sg([1, 2, 3], [10, 11, 12])
        probs = {10: 0.9, 11: 0.1, 12: 0.1, 13: 0.1, 14: 0.1, 15: 0.1}
        shares_bottleneck = cand([7, 2, 3], [10, 11, 12])  # still uses peer 10
        avoids_bottleneck = cand([8, 2, 3], [13, 11, 12])
        out = select_backups(
            current, [shares_bottleneck, avoids_bottleneck], 1, lambda p: probs.get(p, 0.1)
        )
        assert out[0] is avoids_bottleneck

    def test_max_overlap_preferred(self):
        current = sg([1, 2, 3], [10, 11, 12])
        probs = {10: 0.9}
        low_overlap = cand([7, 8, 9], [13, 14, 15])
        high_overlap = cand([7, 2, 3], [13, 11, 12])  # shares components 2, 3
        out = select_backups(
            current, [low_overlap, high_overlap], 1, lambda p: probs.get(p, 0.1)
        )
        assert out[0] is high_overlap

    def test_component_level_exclusion_mode(self):
        current = sg([1, 2, 3], [10, 11, 12])
        # co-hosted different component on the bottleneck peer: allowed
        # under component-level exclusion, not under peer-level
        cohosted = cand([7, 2, 3], [10, 11, 12])
        out_peer = select_backups(current, [cohosted], 1, lambda p: 0.1, exclude_by="peer")
        out_comp = select_backups(current, [cohosted], 1, lambda p: 0.1, exclude_by="component")
        assert out_peer == []
        assert out_comp == [cohosted]

    def test_unknown_exclusion_mode_rejected(self):
        current = sg([1, 2, 3], [10, 11, 12])
        with pytest.raises(ValueError):
            select_backups(current, [], 1, lambda p: 0.1, exclude_by="magic")

    def test_count_respected(self):
        current = sg([1, 2, 3], [10, 11, 12])
        pool = [cand([4 + i, 50 + i, 60 + i], [13 + i, 20 + i, 30 + i]) for i in range(6)]
        out = select_backups(current, pool, 3, lambda p: 0.1)
        assert len(out) == 3
        sigs = {c.graph.signature() for c in out}
        assert len(sigs) == 3  # distinct backups

    def test_multi_failure_subsets_cover_pairs(self):
        """With enough budget, later backups exclude *pairs* of peers."""
        current = sg([1, 2, 3], [10, 11, 12])
        fully_disjoint = cand([4, 5, 6], [13, 14, 15])
        excl_first = cand([7, 2, 3], [16, 11, 12])
        pool = [excl_first, fully_disjoint]
        out = select_backups(current, pool, 2, lambda p: 0.1)
        assert len(out) == 2

    def test_empty_pool(self):
        current = sg([1, 2, 3], [10, 11, 12])
        assert select_backups(current, [], 3, lambda p: 0.1) == []
