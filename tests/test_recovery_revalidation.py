"""Regression: failover must re-validate backups against *current* state
— and must not let the broken session's own firm claims veto them.

``select_backups`` maximises overlap with the current graph, so the
strongest backups are exactly the graphs that re-use the failed
session's peers.  Pre-fix, ``_switch_to_backup`` ran admission while the
broken session still held its firm claims: on a peer whose spare
capacity had meanwhile been taken by other sessions (churn), the backup
was rejected for capacity the failed session itself was holding, and
recovery needlessly fell through to the reactive (full re-probing)
path.  The fix releases the broken graph's claims before trying
backups, and checks each backup with :func:`revalidate_backup`.
"""

import pytest

from repro.core.function_graph import FunctionGraph
from repro.core.recovery import revalidate_backup
from repro.core.session import RecoveryConfig, SessionManager
from repro.sim.engine import Simulator

from worlds import MicroWorld


def contended_world():
    """fa duplicated, fb only on peer 3 — every backup shares peer 3.

    fb takes 33 cpu of peer 3's 100; a second session ("fc", also on
    peer 3) takes another 50.  After the fa-host dies, the backup needs
    33 cpu at peer 3: available is 17 with the broken session's claim
    still held (rejected) but 67 once it is released (admitted).
    """
    world = MicroWorld(n_peers=6)
    world.place("fa", peer=1, delay=0.005)
    world.place("fa", peer=2, delay=0.008)
    world.place("fb", peer=3, cpu=33.0)
    world.place("fc", peer=3, cpu=50.0)
    return world


class TestSwitchUnderContention:
    def setup_sessions(self):
        world = contended_world()
        sim = Simulator()
        mgr = SessionManager(sim, world.bcp, config=RecoveryConfig(upper_bound=3.0))
        req = world.request(
            FunctionGraph.linear(["fa", "fb"]), source=0, dest=4,
            delay_bound=0.5, failure_req=0.02, duration=1000.0,
        )
        session = mgr.establish(req)
        assert session is not None and session.active
        assert session.backups, "fixture must produce an overlapping backup"
        assert all(b.graph.uses_peer(3) for b in session.backups)
        # churn: an unrelated session eats peer 3's remaining slack
        other = mgr.establish(
            world.request(
                FunctionGraph.linear(["fc"]), source=0, dest=5, duration=1000.0
            )
        )
        assert other is not None and other.active
        assert world.pool.available(3).get("cpu") == pytest.approx(17.0)
        return world, sim, mgr, session, other

    def test_backup_switch_not_blocked_by_own_firm_claims(self):
        world, sim, mgr, session, other = self.setup_sessions()
        world.kill(1)
        mgr.peer_departed(1)
        sim.run(until=5.0)
        assert session.active
        assert not session.current.uses_peer(1)
        # pre-fix this was a reactive (full re-probe) recovery: the
        # backup needed capacity the dead session itself still held
        assert mgr.stats.proactive_recoveries == 1
        assert mgr.stats.reactive_recoveries == 0
        assert mgr.stats.failures == 1
        assert other.active

    def test_peer3_accounting_after_switch(self):
        world, sim, mgr, session, other = self.setup_sessions()
        world.kill(1)
        mgr.peer_departed(1)
        sim.run(until=5.0)
        # exactly the recovered session's fb (33) + the other's fc (50)
        assert world.pool.available(3).get("cpu") == pytest.approx(17.0)
        mgr.teardown(session.session_id)
        mgr.teardown(other.session_id)
        assert world.pool.active_tokens() == []


class TestRevalidateBackup:
    def candidate(self, world, peer):
        req = world.request(FunctionGraph.linear(["fa"]), source=0, dest=3)
        result = world.bcp.compose(req, confirm=False)
        assert result.success
        return next(
            c for c in result.qualified if c.graph.component("fa").peer == peer
        )

    def test_live_admittable_backup_passes_and_holds_claim(self):
        world = MicroWorld(n_peers=4)
        world.place("fa", peer=1)
        world.place("fa", peer=2)
        cand = self.candidate(world, 1)
        token = ("t", 1)
        assert revalidate_backup(cand, world.pool, world.bcp.alive, token)
        assert world.pool.has_token(token)  # the switch claim is booked
        world.pool.release(token)

    def test_dead_peer_fails_revalidation(self):
        world = MicroWorld(n_peers=4)
        world.place("fa", peer=1)
        world.place("fa", peer=2)
        cand = self.candidate(world, 1)
        world.dead.add(1)
        assert not revalidate_backup(cand, world.pool, world.bcp.alive, ("t", 2))
        assert not world.pool.has_token(("t", 2))

    def test_admission_failure_leaves_no_partial_claim(self):
        world = MicroWorld(n_peers=4)
        world.place("fa", peer=1, cpu=60.0)
        world.place("fa", peer=2, cpu=60.0)
        cand = self.candidate(world, 1)
        # someone else took the capacity since composition time
        from repro.core.resources import ResourceVector

        assert world.pool.soft_allocate_peer(
            ("blocker",), 1, ResourceVector({"cpu": 60.0})
        )
        assert not revalidate_backup(cand, world.pool, world.bcp.alive, ("t", 3))
        assert not world.pool.has_token(("t", 3))
        assert world.pool.active_tokens() == [("blocker",)]
