"""Scale-out harness and overload survival: admission, shedding,
lifecycle ordering, kill-under-load, and the multi-process launcher."""

import asyncio
import dataclasses
import os

import pytest

from repro.net import (
    AdmissionConfig,
    ClusterConfig,
    LiveCluster,
    LoadDriver,
    LoadGuard,
    ScaleoutConfig,
    ScaleoutController,
    summarize_records,
)
from repro.net import codec
from repro.net.rpc import RetryPolicy
from repro.net.scaleout import RequestRecord, quantile


def _small_config(**overrides):
    base = dict(n_peers=6, n_functions=5, seed=2, capacity_scale=4.0)
    base.update(overrides)
    return ClusterConfig(**base)


# a port window that differs per test process, so parallel CI shards
# don't collide on fixed listeners
def _port_base() -> int:
    return 20000 + (os.getpid() * 7) % 7000


# ----------------------------------------------------------------------
# Busy frame + guard units
# ----------------------------------------------------------------------
@pytest.mark.parametrize("version", [1, 2])
def test_busy_frame_round_trips_both_codecs(version):
    busy = codec.Busy(request_id=41, reason="sessions", inflight=9)
    env = {"kind": "res", "id": 5, "src": 2, "body": {"busy": busy}}
    out = codec.decode_frame(codec.encode_frame(env, version=version))
    assert out["body"]["busy"] == busy


def test_admission_config_validation():
    with pytest.raises(ValueError):
        AdmissionConfig(max_sessions=0)
    with pytest.raises(ValueError):
        AdmissionConfig(probe_soft_limit=10, max_probe_tasks=5)
    with pytest.raises(ValueError):
        AdmissionConfig(rpc_max_inflight=-1)


def test_load_guard_session_admission():
    guard = LoadGuard(AdmissionConfig(enabled=True, max_sessions=2))
    assert guard.try_open_session(1)
    assert guard.try_open_session(2)
    assert guard.try_open_session(1)  # re-admitting an open rid is free
    assert not guard.try_open_session(3)  # at capacity
    guard.close_session(1)
    assert guard.try_open_session(3)  # slot freed
    stats = guard.stats()
    assert stats["sessions_admitted"] == 3
    assert stats["sessions_rejected"] == 1
    assert stats["sessions_peak"] == 2


def test_load_guard_disabled_is_transparent():
    guard = LoadGuard(AdmissionConfig(enabled=False, max_sessions=1))
    assert all(guard.try_open_session(rid) for rid in range(50))
    assert not guard.probe_overloaded()
    assert not guard.degraded()
    assert guard.stats()["sessions_rejected"] == 0


def test_load_guard_probe_watermarks():
    guard = LoadGuard(
        AdmissionConfig(enabled=True, probe_soft_limit=2, max_probe_tasks=3)
    )
    assert not guard.degraded()
    guard.begin_probe()
    guard.begin_probe()
    assert guard.degraded() and not guard.probe_overloaded()
    guard.begin_probe()
    assert guard.probe_overloaded()
    guard.end_probe()
    assert not guard.probe_overloaded() and guard.degraded()
    assert guard.stats()["probes_peak"] == 3


def test_quantile_and_summary():
    assert quantile([], 0.5) == 0.0
    assert quantile([3.0], 0.99) == 3.0
    assert quantile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)
    records = [
        RequestRecord(t=0.0, latency=0.1, outcome="ok"),
        RequestRecord(t=0.1, latency=0.2, outcome="ok"),
        RequestRecord(t=0.2, latency=0.01, outcome="busy"),
        RequestRecord(t=0.3, latency=5.0, outcome="failed"),
    ]
    s = summarize_records(records, duration=2.0)
    assert s["offered"] == 4 and s["ok"] == 2 and s["busy"] == 1
    assert s["goodput"] == pytest.approx(1.0)
    assert s["shed_rate"] == pytest.approx(0.25)
    assert s["latency_busy"]["p99"] == pytest.approx(0.01)


def test_scaleout_config_round_trip_and_sharding():
    cfg = ScaleoutConfig(
        n_peers=12,
        procs=3,
        admission=AdmissionConfig(enabled=True, max_sessions=4),
        kill_peer=5,
    )
    clone = ScaleoutConfig.from_dict(cfg.to_dict())
    assert clone == cfg
    shards = [cfg.hosted_by(s) for s in range(3)]
    assert sorted(p for shard in shards for p in shard) == list(range(12))
    assert all(shards[s] for s in range(3))
    ccfg = cfg.cluster_config(shard=1)
    assert ccfg.hosted == cfg.hosted_by(1)
    assert ccfg.transport == "tcp" and ccfg.port_base == cfg.port_base
    with pytest.raises(ValueError):
        ScaleoutConfig(n_peers=3, procs=2)  # a shard without two endpoints


def test_hosted_shard_requires_tcp_and_port_base():
    with pytest.raises(ValueError):
        LiveCluster(_small_config(hosted=(0, 1, 2)))  # loopback shard
    with pytest.raises(ValueError):
        LiveCluster(
            _small_config(transport="tcp", hosted=(0, 1, 2))  # no port_base
        )
    with pytest.raises(ValueError):
        LiveCluster(_small_config(hosted=(0, 99)))  # unknown peer


# ----------------------------------------------------------------------
# admission end-to-end
# ----------------------------------------------------------------------
def test_admission_rejects_fast_and_leaks_nothing():
    """With one collection window per destination, a concurrent burst
    must shed some sessions in one round trip — and a shed session holds
    zero soft or firm state anywhere."""

    async def scenario():
        cluster = LiveCluster(
            _small_config(
                admission=AdmissionConfig(enabled=True, max_sessions=1),
            )
        )
        async with cluster:
            gen = cluster.scenario.requests
            # many concurrent sessions against ONE destination peer
            others = [p for p in sorted(cluster.daemons) if p != 3]
            requests = [
                gen.next_request(source=others[i % len(others)], dest=3)
                for i in range(12)
            ]
            t0 = asyncio.get_running_loop().time()
            results = await cluster.compose_concurrent(
                requests, concurrency=12, confirm=True, timeout=30
            )
            elapsed = asyncio.get_running_loop().time() - t0
            stats = cluster.admission_stats()
            soft = cluster.soft_tokens()
            errors = cluster.errors()
        return results, stats, soft, errors, elapsed

    results, stats, soft, errors, elapsed = asyncio.run(scenario())
    assert errors == []
    busy = [r for r in results if (r.failure_reason or "").startswith("busy")]
    assert stats["sessions_rejected"] > 0
    assert len(busy) == stats["sessions_rejected"]
    # rejection is immediate (one control round trip), not a timeout
    assert elapsed < 20
    for r in busy:
        assert not r.success
        assert r.probes_sent == 0  # no probe wave ever launched
        assert r.session_tokens == []  # and no firm token leaked
    assert soft == {}  # no dangling reservations from shed sessions
    assert any(r.success for r in results)  # the admitted ones still run


def test_admission_unhit_limits_preserve_parity():
    """A guard whose limits are never reached must not change results."""
    from repro.net import MeasurementConfig

    shared = {}

    def one_pass(admission):
        async def scenario():
            cluster = LiveCluster(
                _small_config(
                    admission=admission,
                    # measured RTT jitter feeds selection; freeze it so the
                    # two passes see identical costs (parity-test idiom)
                    measurement=MeasurementConfig(enabled=False),
                ),
                scenario=shared.get("scenario"),
            )
            if "scenario" not in shared:
                shared["scenario"] = cluster.scenario
                shared["requests"] = cluster.scenario.requests.batch(4)
            async with cluster:
                results = await cluster.compose_many(
                    shared["requests"], confirm=False, timeout=60
                )
            assert cluster.errors() == []
            return [r.best.signature() if r.success else None for r in results]

        return asyncio.run(scenario())

    generous = AdmissionConfig(
        enabled=True, max_sessions=64, probe_soft_limit=512, max_probe_tasks=1024
    )
    on = one_pass(generous)
    off = one_pass(None)
    assert any(s is not None for s in on), "fixture must compose something"
    assert on == off


def test_probe_shedding_under_tiny_limits():
    """Absurdly low probe watermarks force the shed path: credit comes
    back with reason "shed", windows still close, nothing leaks."""

    async def scenario():
        cluster = LiveCluster(
            _small_config(
                collect_wall_timeout=5.0,
                admission=AdmissionConfig(
                    enabled=True,
                    max_sessions=64,
                    probe_soft_limit=1,
                    max_probe_tasks=1,
                ),
            )
        )
        async with cluster:
            requests = cluster.scenario.requests.batch(6)
            results = await cluster.compose_concurrent(
                requests, concurrency=6, confirm=False, timeout=30
            )
            stats = cluster.admission_stats()
            soft = cluster.soft_tokens()
            errors = cluster.errors()
        return results, stats, soft, errors

    results, stats, soft, errors = asyncio.run(scenario())
    assert errors == []
    assert len(results) == 6  # every session resolved, none hung
    assert stats["probes_shed"] > 0 or stats["budget_degrades"] > 0
    assert soft == {}


# ----------------------------------------------------------------------
# lifecycle: stop mid-burst, kill under load
# ----------------------------------------------------------------------
def test_stop_mid_burst_is_clean():
    """Satellite (a): stopping the cluster with compositions in flight
    resolves every caller with a structured result, leaves no stray
    tasks, and records no daemon errors."""

    async def scenario():
        # emulated loopback latency keeps the burst genuinely in flight
        # at the 50 ms mark (zero-latency queues can finish it first)
        cluster = LiveCluster(_small_config(seed=5, latency=0.02))
        await cluster.start()
        requests = cluster.scenario.requests.batch(8)
        burst = [
            asyncio.ensure_future(cluster.compose(r, confirm=True, timeout=30))
            for r in requests
        ]
        await asyncio.sleep(0.05)  # mid-flight: probe waves are live
        await cluster.stop()
        results = await asyncio.gather(*burst)
        await cluster.stop()  # idempotent: second stop is a no-op
        # no daemon-owned or compose task may survive the teardown
        stray = [
            t
            for t in asyncio.all_tasks()
            if t is not asyncio.current_task() and not t.done()
        ]
        return cluster, results, stray

    cluster, results, stray = asyncio.run(scenario())
    assert cluster.errors() == []
    assert stray == []
    assert len(results) == 8
    for r in results:
        # every caller got a real CompositionResult: either the session
        # finished before the teardown or it was aborted with a reason
        if not r.success:
            assert r.failure_reason
    aborted = [
        r
        for r in results
        if (r.failure_reason or "")
        in ("cluster stopping", "cluster stopped", "peer killed")
    ]
    assert aborted, "a 50 ms-old burst cannot have fully completed"


def test_kill_mid_soak_bounded_tail():
    """Satellite (c): killing a peer under sustained load fails the
    affected sessions fast — structured RpcFailures with zero burned
    attempts — instead of stacking retry timeouts on every hop."""

    async def scenario():
        fast = RetryPolicy(timeout=0.3, retries=2, backoff=0.02)
        cluster = LiveCluster(
            _small_config(
                n_peers=8,
                seed=7,
                collect_wall_timeout=2.0,
                probe_retry=fast,
                control_retry=fast,
            )
        )
        async with cluster:
            driver = LoadDriver(
                cluster, rate=30.0, duration=2.0, confirm=False, timeout=8.0, seed=3
            )
            soak = asyncio.ensure_future(driver.run())
            await asyncio.sleep(0.6)
            victim = 5
            cluster.kill_peer(victim)
            records = await soak
            failures = cluster.rpc_failures()
            errors = cluster.errors()
        return records, failures, errors, victim

    records, failures, errors, victim = asyncio.run(scenario())
    assert errors == []
    assert len(records) > 10
    summary = summarize_records(records, duration=2.0)
    assert summary["ok"] > 0  # the cluster kept composing around the corpse
    # every record resolved within the request timeout: no unbounded tail
    assert max(r.latency for r in records) < 8.0
    # and the kill actually bit: calls already in flight may burn the
    # attempt they had on the wire, but nothing exhausts the full retry
    # budget, and calls issued after the kill fail fast with 0 attempts
    at_victim = [f for f in failures if f.peer == victim]
    assert at_victim
    assert any(f.attempts == 0 for f in at_victim)
    assert all(f.attempts < 3 for f in at_victim)  # retries=2 -> 3 = exhausted


# ----------------------------------------------------------------------
# multi-process launcher
# ----------------------------------------------------------------------
def test_two_process_scaleout_smoke():
    """The full harness: 2 worker processes, TCP sharding, open-loop
    load with admission on — converges, composes, sheds, shuts down."""

    async def scenario():
        cfg = ScaleoutConfig(
            n_peers=8,
            n_functions=6,
            procs=2,
            port_base=_port_base(),
            seed=2,
            capacity_scale=4.0,
            rate=16.0,
            duration=2.0,
            confirm=False,
            request_timeout=8.0,
            collect_wall_timeout=2.0,
            admission=AdmissionConfig(enabled=True, max_sessions=2),
        )
        return await ScaleoutController(cfg).run()

    report = asyncio.run(scenario())
    assert report["errors"] == []
    s = report["summary"]
    assert s["offered"] > 5
    assert s["ok"] > 0, f"no composition succeeded: {s}"
    # cross-shard request ids never collide: sources live in both shards
    sources = {r["source"] for r in report["records"]}
    assert any(p % 2 == 0 for p in sources) and any(p % 2 == 1 for p in sources)
