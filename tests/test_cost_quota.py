"""Unit + property tests for the ψλ cost function and budget/quota logic."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.cost import CostWeights, psi_cost
from repro.core.function_graph import FunctionGraph
from repro.core.qos import QoSVector
from repro.core.quota import (
    ReplicationProportionalQuota,
    UniformQuota,
    budget_for_fraction,
    split_budget,
)
from repro.core.resources import ResourcePool, ResourceVector
from repro.core.service_graph import ServiceGraph
from repro.discovery.metadata import ServiceMetadata
from repro.services.component import QualitySpec


def meta(cid, fn, peer, cpu=10.0, mem=32.0):
    return ServiceMetadata(
        component_id=cid,
        function=fn,
        peer=peer,
        qp=QoSVector({"delay": 0.01, "loss": 0.0}),
        resources=ResourceVector({"cpu": cpu, "memory": mem}),
        input_quality=QualitySpec(),
        output_quality=QualitySpec(),
    )


@pytest.fixture
def pool(overlay):
    caps = {p: ResourceVector({"cpu": 100.0, "memory": 400.0}) for p in overlay.peers()}
    return ResourcePool(overlay, caps)


def one_component_graph(peer=2, cpu=10.0):
    fg = FunctionGraph.linear(["a"])
    return ServiceGraph(
        fg, {"a": meta(1, "a", peer, cpu=cpu)}, source_peer=0, dest_peer=1, base_bandwidth=0.5
    )


class TestCostWeights:
    def test_uniform_sums_to_one(self):
        w = CostWeights.uniform(("cpu", "memory"))
        total = sum(w.resource_weights.values()) + w.bandwidth_weight
        assert total == pytest.approx(1.0)

    def test_bad_sum_rejected(self):
        with pytest.raises(ValueError):
            CostWeights({"cpu": 0.9}, 0.2)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CostWeights({"cpu": -0.5}, 1.5)


class TestPsiCost:
    def test_hand_computed_single_component(self, pool, overlay):
        sg = one_component_graph(peer=2, cpu=30.0)
        w = CostWeights({"cpu": 0.5, "memory": 0.25}, 0.25)
        cost = psi_cost(sg, pool, w)
        expected = 0.5 * 30.0 / 100.0 + 0.25 * 32.0 / 400.0
        for link in sg.service_links():
            if link.src_peer != link.dst_peer:
                ba = pool.path_available_bandwidth(link.src_peer, link.dst_peer)
                expected += 0.25 * link.bandwidth / ba
        assert cost == pytest.approx(expected)

    def test_lower_availability_raises_cost(self, pool):
        sg = one_component_graph(peer=2)
        base = psi_cost(sg, pool)
        pool.soft_allocate_peer("other", 2, ResourceVector({"cpu": 60.0}))
        loaded = psi_cost(sg, pool)
        assert loaded > base

    def test_exhausted_resource_infinite(self, pool):
        sg = one_component_graph(peer=2)
        pool.soft_allocate_peer("hog", 2, ResourceVector({"cpu": 100.0}))
        assert math.isinf(psi_cost(sg, pool))

    def test_bandwidth_only_weights(self, pool):
        sg = one_component_graph()
        w = CostWeights({"cpu": 0.0, "memory": 0.0}, 1.0)
        cost = psi_cost(sg, pool, w)
        assert 0.0 < cost < math.inf

    def test_smaller_demand_smaller_cost(self, pool):
        light = one_component_graph(cpu=5.0)
        heavy = one_component_graph(cpu=50.0)
        assert psi_cost(light, pool) < psi_cost(heavy, pool)

    def test_default_weights_uniform_over_pool_types(self, pool):
        sg = one_component_graph()
        assert psi_cost(sg, pool) == pytest.approx(
            psi_cost(sg, pool, CostWeights.uniform(pool.resource_types))
        )


class TestQuotaPolicies:
    def test_uniform(self):
        assert UniformQuota(4)("any", 100) == 4
        with pytest.raises(ValueError):
            UniformQuota(0)

    def test_replication_proportional(self):
        q = ReplicationProportionalQuota(fraction=0.5, floor_=1, cap=8)
        assert q("f", 0) == 1  # floor
        assert q("f", 4) == 2
        assert q("f", 100) == 8  # cap

    def test_replication_validation(self):
        with pytest.raises(ValueError):
            ReplicationProportionalQuota(fraction=0.0)
        with pytest.raises(ValueError):
            ReplicationProportionalQuota(floor_=5, cap=2)


class TestSplitBudget:
    def test_proportional_to_quota(self):
        shares = split_budget(12, [("a", 2, True), ("b", 1, True)])
        assert shares[0] == 8 and shares[1] == 4

    def test_total_never_exceeds_budget(self):
        shares = split_budget(7, [("a", 3, True), ("b", 2, True), ("c", 2, True)])
        assert sum(shares.values()) == 7

    def test_dependencies_get_at_least_one(self):
        shares = split_budget(2, [("a", 100, True), ("b", 1, True)])
        assert shares[0] >= 1 and shares[1] >= 1

    def test_commutation_starved_first(self):
        # 1 unit, one dependency + one commutation alternative
        shares = split_budget(1, [("dep", 1, True), ("alt", 100, False)])
        assert shares[0] == 1

    def test_zero_budget(self):
        shares = split_budget(0, [("a", 1, True)])
        assert shares[0] == 0

    def test_empty_entries(self):
        assert split_budget(5, []) == {}

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            split_budget(-1, [("a", 1, True)])

    @given(
        st.integers(min_value=0, max_value=1000),
        st.lists(
            st.tuples(st.integers(min_value=1, max_value=50), st.booleans()),
            min_size=1,
            max_size=6,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_split_properties(self, budget, raw_entries):
        entries = [(f"f{i}", q, dep) for i, (q, dep) in enumerate(raw_entries)]
        shares = split_budget(budget, entries)
        assert sum(shares.values()) <= budget
        assert all(v >= 0 for v in shares.values())
        n_deps = sum(1 for _, _, d in entries if d)
        if budget >= len(entries):
            for i, (_, _, is_dep) in enumerate(entries):
                if is_dep:
                    assert shares[i] >= 1


class TestBudgetForFraction:
    def test_paper_example(self):
        # probing-0.2 of 4913 optimal probes
        assert budget_for_fraction(4913, 0.2) == 983

    def test_minimum_one(self):
        assert budget_for_fraction(2, 0.1) == 1
        assert budget_for_fraction(0, 0.5) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            budget_for_fraction(-1, 0.5)
        with pytest.raises(ValueError):
            budget_for_fraction(100, 0.0)
        with pytest.raises(ValueError):
            budget_for_fraction(100, 1.5)
