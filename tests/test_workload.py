"""Tests for population and request generation."""

import numpy as np
import pytest

from repro.core.qos import additive_to_loss
from repro.workload.generator import (
    PopulationConfig,
    RequestConfig,
    RequestGenerator,
    function_names,
    generate_population,
    media_population,
)
from repro.workload.scenarios import planetlab_testbed, simulation_testbed


class TestFunctionNames:
    def test_count_and_format(self):
        names = function_names(200)
        assert len(names) == 200
        assert names[0] == "F001" and names[-1] == "F200"

    def test_width_grows(self):
        assert function_names(2000)[-1] == "F2000"


class TestGeneratePopulation:
    def test_components_per_peer_range(self, overlay):
        cfg = PopulationConfig(n_functions=20, components_per_peer=(1, 3))
        pop = generate_population(overlay, cfg, rng=np.random.default_rng(0))
        per_peer = {}
        for spec in pop:
            per_peer[spec.peer] = per_peer.get(spec.peer, 0) + 1
        assert set(per_peer) == set(overlay.peers())
        assert all(1 <= c <= 3 for c in per_peer.values())

    def test_functions_drawn_from_catalogue(self, overlay):
        cfg = PopulationConfig(n_functions=10)
        pop = generate_population(overlay, cfg, rng=np.random.default_rng(0))
        catalogue = set(function_names(10))
        assert {s.function for s in pop} <= catalogue

    def test_qp_within_ranges(self, overlay):
        cfg = PopulationConfig(n_functions=10, service_delay_range=(0.01, 0.02))
        pop = generate_population(overlay, cfg, rng=np.random.default_rng(0))
        for s in pop:
            assert 0.01 <= s.qp.get("delay") <= 0.02
            assert additive_to_loss(s.qp.get("loss")) <= 0.002 + 1e-9

    def test_distinct_functions_per_peer(self, overlay):
        pop = generate_population(
            overlay, PopulationConfig(n_functions=30), rng=np.random.default_rng(1)
        )
        by_peer = {}
        for s in pop:
            by_peer.setdefault(s.peer, []).append(s.function)
        for fns in by_peer.values():
            assert len(fns) == len(set(fns))

    def test_bad_range_rejected(self, overlay):
        with pytest.raises(ValueError):
            generate_population(
                overlay, PopulationConfig(components_per_peer=(3, 1)),
                rng=np.random.default_rng(0),
            )


class TestMediaPopulation:
    def test_one_component_per_peer(self, overlay):
        pop = media_population(overlay, rng=np.random.default_rng(0))
        assert len(pop) == overlay.n_peers
        assert len({s.peer for s in pop}) == overlay.n_peers

    def test_only_media_functions(self, overlay):
        from repro.services.media import MEDIA_FUNCTIONS

        pop = media_population(overlay, rng=np.random.default_rng(0))
        assert {s.function for s in pop} <= set(MEDIA_FUNCTIONS)


class TestRequestGenerator:
    def gen(self, overlay, **cfg):
        return RequestGenerator(
            overlay,
            [f"F{i:03d}" for i in range(1, 21)],
            RequestConfig(**cfg),
            rng=np.random.default_rng(3),
        )

    def test_function_count_range(self, overlay):
        gen = self.gen(overlay, function_count=(2, 4))
        for _ in range(20):
            req = gen.next_request()
            assert 2 <= req.n_functions <= 4

    def test_explicit_function_count(self, overlay):
        gen = self.gen(overlay)
        assert self.gen(overlay).next_request(n_functions=3).n_functions == 3

    def test_endpoints_differ(self, overlay):
        gen = self.gen(overlay)
        for _ in range(20):
            req = gen.next_request()
            assert req.source_peer != req.dest_peer

    def test_explicit_endpoints(self, overlay):
        req = self.gen(overlay).next_request(source=3, dest=7)
        assert req.source_peer == 3 and req.dest_peer == 7

    def test_linear_by_default(self, overlay):
        gen = self.gen(overlay, dag_probability=0.0)
        for _ in range(10):
            assert gen.next_request().function_graph.is_linear()

    def test_dag_generation(self, overlay):
        gen = self.gen(overlay, dag_probability=1.0, function_count=(4, 5))
        shapes = [gen.next_request().function_graph for _ in range(10)]
        assert any(not fg.is_linear() for fg in shapes)

    def test_commutation_generation(self, overlay):
        gen = self.gen(overlay, commutation_probability=1.0, function_count=(3, 4))
        reqs = [gen.next_request() for _ in range(10)]
        assert any(r.function_graph.commutations for r in reqs)
        for r in reqs:
            r.function_graph.validate()

    def test_qos_budget_scales_with_length(self, overlay):
        gen = self.gen(overlay, function_count=(2, 2))
        short = gen.next_request(n_functions=2)
        long = gen.next_request(n_functions=6)
        assert long.qos.bounds["delay"] > short.qos.bounds["delay"]

    def test_tightness_scales_bound(self, overlay):
        loose = self.gen(overlay, qos_tightness=2.0).next_request(n_functions=3)
        tight = self.gen(overlay, qos_tightness=0.5).next_request(n_functions=3)
        assert loose.qos.bounds["delay"] > tight.qos.bounds["delay"]

    def test_alive_filter_respected(self, overlay):
        gen = RequestGenerator(
            overlay,
            ["F001"],
            RequestConfig(),
            rng=np.random.default_rng(0),
            alive=lambda p: p in (4, 5),
        )
        for _ in range(10):
            req = gen.next_request()
            assert {req.source_peer, req.dest_peer} == {4, 5}

    def test_endpoint_pool_respected(self, overlay):
        gen = RequestGenerator(
            overlay, ["F001"], RequestConfig(), rng=np.random.default_rng(0),
            endpoint_pool=[1, 2, 3],
        )
        for _ in range(10):
            req = gen.next_request()
            assert req.source_peer in (1, 2, 3) and req.dest_peer in (1, 2, 3)

    def test_too_few_live_endpoints_raises(self, overlay):
        gen = RequestGenerator(
            overlay, ["F001"], RequestConfig(), rng=np.random.default_rng(0),
            alive=lambda p: p == 0,
        )
        with pytest.raises(RuntimeError):
            gen.next_request()

    def test_no_functions_rejected(self, overlay):
        with pytest.raises(ValueError):
            RequestGenerator(overlay, [], rng=np.random.default_rng(0))

    def test_batch(self, overlay):
        batch = self.gen(overlay).batch(5)
        assert len(batch) == 5
        assert len({r.request_id for r in batch}) == 5


class TestScenarios:
    def test_simulation_testbed_builds(self):
        sc = simulation_testbed(n_ip=150, n_peers=20, n_functions=8, seed=1)
        assert sc.net.overlay.n_peers == 20
        assert sc.replication_degree > 0
        result = sc.net.compose(sc.requests.next_request(), budget=16)
        assert result is not None

    def test_power_law_overlay_kind(self):
        sc = simulation_testbed(
            n_ip=150, n_peers=20, n_functions=8, overlay_kind="power-law", seed=1
        )
        assert sc.overlay.kind == "power-law"

    def test_unknown_overlay_kind_rejected(self):
        with pytest.raises(ValueError):
            simulation_testbed(n_ip=100, n_peers=10, overlay_kind="torus")

    def test_planetlab_testbed_replication(self):
        sc = planetlab_testbed(n_peers=30, seed=1)
        assert sc.overlay.kind == "wan"
        assert sc.replication_degree == pytest.approx(30 / len(sc.net.registry.functions()))

    def test_protected_endpoints_survive_churn(self):
        sc = simulation_testbed(
            n_ip=150, n_peers=20, n_functions=8,
            churn_rate=1.0, protected_endpoints=4, seed=2,
        )
        sc.net.start_churn()
        sc.net.run(until=3.0)
        protected = sc.requests.endpoint_pool
        assert protected is not None
        for p in protected:
            assert sc.net.network.is_alive(p)

    def test_capacity_scale(self):
        sc = simulation_testbed(
            n_ip=150, n_peers=10, n_functions=5, capacity_scale=0.5, seed=1
        )
        for p in sc.overlay.peers():
            assert sc.net.pool.capacity(p).get("cpu") <= 75.0

    def test_deterministic_same_seed(self):
        a = simulation_testbed(n_ip=150, n_peers=15, n_functions=6, seed=9)
        b = simulation_testbed(n_ip=150, n_peers=15, n_functions=6, seed=9)
        assert sorted(a.overlay.graph.edges) == sorted(b.overlay.graph.edges)
        ra = a.net.compose(a.requests.next_request(), budget=16)
        rb = b.net.compose(b.requests.next_request(), budget=16)
        assert ra.success == rb.success
        if ra.success:
            assert ra.best_qos.get("delay") == pytest.approx(rb.best_qos.get("delay"))
