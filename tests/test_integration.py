"""End-to-end integration tests across the full stack."""

import numpy as np
import pytest

from repro.core import SpiderNet
from repro.core.bcp import BCPConfig
from repro.core.session import RecoveryConfig
from repro.workload.generator import RequestConfig
from repro.workload.scenarios import planetlab_testbed, simulation_testbed


class TestFullPipeline:
    def test_compose_many_requests_invariants_hold(self):
        sc = simulation_testbed(n_ip=150, n_peers=25, n_functions=10, seed=4)
        successes = 0
        for _ in range(20):
            result = sc.net.compose(sc.requests.next_request(), budget=24)
            if result.success:
                successes += 1
            sc.net.pool.check_invariants()
        assert successes > 0
        assert sc.net.pool.active_tokens() == []

    def test_sessions_under_churn_full_stack(self):
        sc = simulation_testbed(
            n_ip=150, n_peers=30, n_functions=10,
            request_config=RequestConfig(function_count=(2, 3), duration_mean=50.0),
            bcp_config=BCPConfig(budget=32),
            recovery_config=RecoveryConfig(upper_bound=2.0),
            churn_rate=0.05, churn_downtime=5.0, protected_endpoints=6, seed=4,
        )
        for _ in range(8):
            sc.net.sessions.establish(sc.requests.next_request())
        sc.net.start_churn()
        sc.net.run(until=20.0)
        stats = sc.net.sessions.stats
        assert stats.sessions_established > 0
        sc.net.pool.check_invariants()
        # every closed/failed session released its claims; active ones hold
        active_tokens = set(sc.net.pool.active_tokens())
        for s in sc.net.sessions.sessions.values():
            if s.active:
                assert set(s.tokens) <= active_tokens

    def test_planetlab_pipeline_with_dag_and_commutation(self):
        sc = planetlab_testbed(
            n_peers=40,
            request_config=RequestConfig(
                function_count=(4, 4), dag_probability=0.5,
                commutation_probability=0.5, qos_tightness=3.0,
            ),
            seed=4,
        )
        successes = 0
        for _ in range(10):
            result = sc.net.compose(sc.requests.next_request(), budget=48)
            if result.success:
                successes += 1
                result.best.pattern.validate()
        assert successes > 0

    def test_ledger_accumulates_across_layers(self):
        sc = simulation_testbed(n_ip=150, n_peers=20, n_functions=8, seed=4)
        sc.net.compose(sc.requests.next_request(), budget=16)
        counts = sc.net.ledger.count
        assert counts.get("bcp_probe", 0) > 0
        assert counts.get("dht_route", 0) + counts.get("dht_replicate", 0) > 0


class TestDeterminism:
    def test_same_seed_same_everything(self):
        results = []
        for _ in range(2):
            sc = simulation_testbed(n_ip=150, n_peers=20, n_functions=8, seed=11)
            out = []
            for _ in range(5):
                r = sc.net.compose(sc.requests.next_request(), budget=16)
                out.append(
                    (r.success, r.probes_sent,
                     r.best_qos.get("delay") if r.best_qos else None)
                )
            results.append(out)
        assert results[0] == results[1]

    def test_different_seed_different_topology(self):
        a = simulation_testbed(n_ip=150, n_peers=20, n_functions=8, seed=1)
        b = simulation_testbed(n_ip=150, n_peers=20, n_functions=8, seed=2)
        assert sorted(a.overlay.graph.edges) != sorted(b.overlay.graph.edges)


class TestScaleSmoke:
    @pytest.mark.slow
    def test_paper_scale_structures_build(self):
        """1000 IP nodes / 100 peers build in reasonable time."""
        sc = simulation_testbed(n_ip=1000, n_peers=100, n_functions=25, seed=0)
        assert sc.net.dht.alive_count() == 100
        result = sc.net.compose(sc.requests.next_request(), budget=32)
        assert result is not None
