"""Adversarial failure-injection tests: storms, flapping, total loss.

These scenarios go beyond Fig. 9's gentle 1 % churn to check that every
layer fails *cleanly* — graceful degradation, informative failures, and
zero resource leaks — when the network misbehaves badly.
"""

import numpy as np
import pytest

from repro.core.bcp import BCPConfig
from repro.core.function_graph import FunctionGraph
from repro.core.session import RecoveryConfig, SessionManager
from repro.dht.id_space import key_for
from repro.sim.engine import Simulator

from worlds import MicroWorld


def big_world(n_peers=16, replicas=4, **kwargs):
    world = MicroWorld(n_peers=n_peers, **kwargs)
    for i in range(replicas):
        world.place("fa", peer=2 + i)
        world.place("fb", peer=2 + replicas + i)
    return world


class TestChurnStorm:
    def test_dht_survives_half_the_ring_dying(self):
        world = big_world()
        world.dht.put(key_for("fa"), "meta", origin_peer=0)
        # kill half the peers (sparing 0, the query origin)
        for p in range(1, 9):
            world.kill(p)
        result = world.dht.route(key_for("fa"), origin_peer=0)
        assert world.dht.is_alive(result.responsible_node)
        assert result.responsible_node == world.dht.responsible_node(key_for("fa"))

    def test_registry_filters_the_dead_majority(self):
        world = big_world()
        for p in range(2, 6):
            world.kill(p)  # every fa host dies
        lookup = world.registry.lookup("fa", origin_peer=0)
        assert lookup.components == []
        lookup_b = world.registry.lookup("fb", origin_peer=0)
        assert len(lookup_b.components) == 4

    def test_composition_fails_cleanly_when_all_hosts_die(self):
        world = big_world()
        for p in range(2, 6):
            world.kill(p)
        req = world.request(FunctionGraph.linear(["fa", "fb"]), source=0, dest=15)
        result = world.bcp.compose(req)
        assert not result.success
        assert result.failure_reason is not None
        assert world.pool.active_tokens() == []

    def test_sessions_under_storm_release_everything(self):
        world = big_world()
        sim = Simulator()
        mgr = SessionManager(sim, world.bcp, config=RecoveryConfig(upper_bound=2.0))
        sessions = []
        for _ in range(4):
            s = mgr.establish(
                world.request(
                    FunctionGraph.linear(["fa", "fb"]), source=0, dest=15,
                    delay_bound=0.8, duration=1000.0,
                )
            )
            if s:
                sessions.append(s)
        assert sessions
        # the storm: every service host dies at once
        for p in range(2, 10):
            world.kill(p)
            mgr.peer_departed(p)
        sim.run(until=30.0)
        for s in sessions:
            assert not s.active
        assert world.pool.active_tokens() == []
        world.pool.check_invariants()


class TestFlapping:
    def test_rapid_kill_revive_cycles_keep_dht_consistent(self):
        world = big_world()
        peer = 5
        for _ in range(6):
            world.kill(peer)
            world.dead.discard(peer)
            world.registry.peer_arrived(peer)
            world.dht.node_arrived(peer)
        # the ring is intact and routing still agrees with ground truth
        rng = np.random.default_rng(0)
        for _ in range(10):
            key = key_for(f"k{rng.integers(0, 100)}")
            result = world.dht.route(key, origin_peer=0)
            assert result.responsible_node == world.dht.responsible_node(key)

    def test_component_on_flapping_peer_usable_after_return(self):
        world = big_world()
        target = world.registry.duplicates("fa")[0]
        peer = target.peer
        world.kill(peer)
        world.dead.discard(peer)
        world.registry.peer_arrived(peer)
        world.dht.node_arrived(peer)
        lookup = world.registry.lookup("fa", origin_peer=0)
        assert any(m.component_id == target.component_id for m in lookup.components)


class TestPartialFailureDuringRecovery:
    def test_backup_dies_during_detection_window(self):
        """The primary AND the best backup die before the switch lands."""
        world = big_world(replicas=5)
        sim = Simulator()
        mgr = SessionManager(
            sim, world.bcp,
            config=RecoveryConfig(upper_bound=3.0, detection_delay=1.0),
        )
        session = mgr.establish(
            world.request(
                FunctionGraph.linear(["fa", "fb"]), source=0, dest=15,
                delay_bound=0.8, failure_req=0.02, duration=1000.0,
            )
        )
        assert session is not None and session.backups
        primary = session.current.component("fa").peer
        first_backup_peers = set(session.backups[0].graph.peers())
        world.kill(primary)
        mgr.peer_departed(primary)
        # while detection is pending, the best backup's peers die too
        for p in first_backup_peers:
            if p != primary:
                world.kill(p)
        sim.run(until=30.0)
        # the manager must have skipped the dead backup (next backup or
        # reactive re-probing) without leaking anything
        if session.active:
            assert all(p not in world.dead for p in session.current.peers())
        else:
            assert world.pool.active_tokens() == []
        world.pool.check_invariants()

    def test_reactive_recomposition_avoids_all_dead_peers(self):
        world = big_world(replicas=5)
        sim = Simulator()
        mgr = SessionManager(sim, world.bcp, config=RecoveryConfig(upper_bound=0.0))
        session = mgr.establish(
            world.request(
                FunctionGraph.linear(["fa", "fb"]), source=0, dest=15,
                delay_bound=0.8, duration=1000.0,
            )
        )
        dead = {session.current.component("fa").peer, session.current.component("fb").peer}
        for p in dead:
            world.kill(p)
            mgr.peer_departed(p)
        sim.run(until=30.0)
        if session.active:
            assert not (set(session.current.peers()) & dead)


class TestResourceExhaustionStorm:
    def test_requests_beyond_capacity_fail_without_leaks(self):
        world = big_world(cpu=30.0)  # each peer fits ~1 component
        sim = Simulator()
        mgr = SessionManager(sim, world.bcp)
        established = 0
        for i in range(20):
            s = mgr.establish(
                world.request(
                    FunctionGraph.linear(["fa", "fb"]), source=0, dest=15,
                    delay_bound=0.8, duration=1000.0,
                )
            )
            established += int(s is not None)
            world.pool.check_invariants()
        # capacity admits only a handful; the rest must fail cleanly
        assert 0 < established < 20
        for s in list(mgr.sessions.values()):
            mgr.teardown(s.session_id)
        assert world.pool.active_tokens() == []
