"""Equivalence and cache-semantics tests for the composition fast path.

The fast path (route/link caching, wave-scoped discovery memoization,
vectorized scoring, float-mirror link accounting) is only admissible if
it is *behaviour-preserving*: every test here pins an optimized code
path against its reference implementation, culminating in a seeded
200-request A/B run with every cache disabled.
"""

import math

import numpy as np
import pytest

from repro.core.bcp import BCPConfig
from repro.core.function_graph import FunctionGraph
from repro.perf import PhaseTimer
from repro.workload.generator import RequestConfig
from repro.workload.scenarios import simulation_testbed

from worlds import MicroWorld, micro_overlay


def structural_signature(graph):
    """``ServiceGraph.signature()`` with component ids replaced by the
    hosting peers.  Component ids come from a process-global counter, so
    two independently built worlds assign different ids to the same
    placement — this key is comparable across worlds."""
    return (
        graph.pattern.edges,
        frozenset((fn, m.peer) for fn, m in graph.assignment.items()),
    )


# ----------------------------------------------------------------------
# route / link caching
# ----------------------------------------------------------------------
class TestRouterCaching:
    def all_pairs(self, router):
        peers = list(router.peers)
        return [(a, b) for a in peers for b in peers if a != b]

    def test_cached_paths_match_uncached(self):
        cached = micro_overlay(n_peers=6).router
        fresh = micro_overlay(n_peers=6).router
        fresh.set_path_cache(False)
        for a, b in self.all_pairs(cached):
            assert cached.path(a, b) == fresh.path(a, b)
            assert cached.links(a, b) == fresh.links(a, b)
            np.testing.assert_array_equal(
                cached.link_indices(a, b), fresh.link_indices(a, b)
            )
            assert cached.link_index_list(a, b) == fresh.link_index_list(a, b)

    def test_repeat_lookup_returns_same_answer(self):
        router = micro_overlay(n_peers=5).router
        first = router.path(0, 4)
        assert router.path(0, 4) == first
        assert router.link_index_list(0, 4) == router.link_index_list(0, 4)

    def test_link_index_list_names_path_links(self):
        router = micro_overlay(n_peers=6).router
        order = list(router.link_order)
        for a, b in self.all_pairs(router):
            named = [order[i] for i in router.link_index_list(a, b)]
            want = [tuple(sorted(l)) for l in router.links(a, b)]
            assert [tuple(sorted(l)) for l in named] == want

    def test_batch_link_indices_reconstructs_singles(self):
        router = micro_overlay(n_peers=7).router
        src = 0
        dsts = (3, 0, 5, 1, 0, 6)  # includes src==dst entries (skipped)
        cat, offsets, positions = router.batch_link_indices(src, dsts)
        # split the concatenation back into per-destination segments
        segments = np.split(cat, offsets[1:]) if len(offsets) else []
        for pos, seg in zip(positions, segments):
            assert list(seg) == router.link_index_list(src, dsts[pos])
        # every non-degenerate destination is represented exactly once
        expect = [i for i, d in enumerate(dsts) if d != src]
        assert sorted(positions.tolist()) == expect

    def test_batch_all_degenerate_is_empty(self):
        router = micro_overlay(n_peers=4).router
        cat, offsets, positions = router.batch_link_indices(2, (2, 2))
        assert len(cat) == 0 and len(offsets) == 0 and len(positions) == 0

    def test_clear_cache_empties_all_route_caches(self):
        router = micro_overlay(n_peers=5).router
        router.path(0, 4)
        router.link_indices(0, 4)
        router.link_index_list(0, 4)
        router.batch_link_indices(0, (1, 2))
        router.clear_cache()
        assert not router._path_cache
        assert not router._link_idx_list_cache
        assert not router._batch_idx_cache
        # still answers correctly after invalidation
        assert router.path(0, 4)[0] == 0 and router.path(0, 4)[-1] == 4


# ----------------------------------------------------------------------
# vectorized resource pool vs scalar reference
# ----------------------------------------------------------------------
class TestPoolVectorizedEquivalence:
    def make_worlds(self):
        a, b = MicroWorld(n_peers=6), MicroWorld(n_peers=6)
        b.pool.set_vectorized(False)
        b.overlay.router.set_path_cache(False)
        return a, b

    def test_single_path_bandwidth_matches(self):
        vec, ref = self.make_worlds()
        for pool in (vec.pool, ref.pool):
            assert pool.soft_allocate_path("t1", 0, 5, 3.0)
            assert pool.soft_allocate_path("t2", 2, 4, 1.5)
        for a in range(6):
            for b in range(6):
                assert vec.pool.path_available_bandwidth(a, b) == (
                    ref.pool.path_available_bandwidth(a, b)
                )

    def test_batch_bandwidth_matches_singles(self):
        vec, _ = self.make_worlds()
        pool = vec.pool
        assert pool.soft_allocate_path("t", 1, 4, 2.5)
        dsts = [0, 2, 3, 3, 5]
        batch = pool.path_available_bandwidth_batch(3, dsts)
        singles = [pool.path_available_bandwidth(3, d) for d in dsts]
        assert batch.tolist() == singles

    def test_allocation_and_free_keep_mirrors_in_sync(self):
        vec, ref = self.make_worlds()
        for pool in (vec.pool, ref.pool):
            assert pool.soft_allocate_path("a", 0, 3, 4.0)
            assert pool.soft_allocate_path("b", 0, 3, 4.0)
            # third claim exceeds the 10.0 link capacity
            assert not pool.soft_allocate_path("c", 0, 3, 4.0)
            pool.cancel("a")
            assert pool.soft_allocate_path("c", 0, 3, 4.0)
        for a in range(6):
            for b in range(6):
                assert vec.pool.path_available_bandwidth(a, b) == (
                    ref.pool.path_available_bandwidth(a, b)
                )
        # internal float-list mirror must equal the ndarray exactly
        assert vec.pool._link_used_list == vec.pool._link_used_arr.tolist()


# ----------------------------------------------------------------------
# wave-scoped discovery memoization
# ----------------------------------------------------------------------
class TestWaveLookupCache:
    def populated_world(self):
        w = MicroWorld(n_peers=6)
        w.place("fa", 2)
        w.place("fa", 4)
        w.place("fb", 3)
        return w

    def test_repeat_lookup_hits_and_matches(self):
        w = self.populated_world()
        wave = w.registry.wave_cache()
        first = wave.lookup("fa", origin_peer=0)
        again = wave.lookup("fa", origin_peer=0)
        assert (wave.misses, wave.hits) == (1, 1)
        assert again is first
        assert sorted(c.peer for c in first.components) == [2, 4]
        # different origin or function is a distinct key
        wave.lookup("fa", origin_peer=1)
        wave.lookup("fb", origin_peer=0)
        assert wave.misses == 3

    def test_hits_replay_ledger_charges(self):
        w = self.populated_world()
        ledger = w.dht.ledger
        wave = w.registry.wave_cache()
        base = ledger.snapshot()
        wave.lookup("fa", origin_peer=0)
        one = ledger.delta_since(base)
        wave.lookup("fa", origin_peer=0)
        wave.lookup("fa", origin_peer=0)
        three = ledger.delta_since(base)
        assert one  # a DHT lookup charges something
        assert three == {k: (3 * c, 3 * b) for k, (c, b) in one.items()}

    def test_memoized_compose_keeps_message_accounting(self):
        """Wave memoization must not change probe/ledger accounting."""

        def run(memoize: bool):
            w = MicroWorld(n_peers=8, config=BCPConfig(budget=8, wave_memoization=memoize))
            for p in (2, 3, 5):
                w.place("fa", p)
                w.place("fb", p)
            result = w.bcp.compose(w.request(FunctionGraph.linear(["fa", "fb"])))
            return result, w.dht.ledger

        on, ledger_on = run(True)
        off, ledger_off = run(False)
        assert on.success and off.success
        assert structural_signature(on.best) == structural_signature(off.best)
        assert on.best_cost == off.best_cost
        assert on.probes_sent == off.probes_sent
        assert dict(ledger_on.count) == dict(ledger_off.count)
        assert dict(ledger_on.bytes) == dict(ledger_off.bytes)


# ----------------------------------------------------------------------
# registry TTL cache vs liveness
# ----------------------------------------------------------------------
class TestRegistryCacheLiveness:
    def test_cached_entries_filter_departed_peers(self):
        from repro.discovery.registry import ServiceRegistry

        w = MicroWorld(n_peers=6)
        registry = ServiceRegistry(w.dht, cache_ttl=60.0)
        w.registry = registry
        w.place("fa", 2)
        w.place("fa", 4)
        first = registry.lookup("fa", origin_peer=0, now=0.0)
        assert not first.from_cache
        registry.peer_departed(4)
        cached = registry.lookup("fa", origin_peer=0, now=1.0)
        assert cached.from_cache
        assert [c.peer for c in cached.components] == [2]
        # include_down bypasses the liveness filter but not the cache
        full = registry.lookup("fa", origin_peer=0, now=2.0, include_down=True)
        assert sorted(c.peer for c in full.components) == [2, 4]

    def test_cache_expires_after_ttl(self):
        from repro.discovery.registry import ServiceRegistry

        w = MicroWorld(n_peers=6)
        registry = ServiceRegistry(w.dht, cache_ttl=10.0)
        w.registry = registry
        w.place("fa", 2)
        registry.lookup("fa", origin_peer=0, now=0.0)
        assert registry.lookup("fa", origin_peer=0, now=5.0).from_cache
        assert not registry.lookup("fa", origin_peer=0, now=10.0).from_cache


# ----------------------------------------------------------------------
# perf harness
# ----------------------------------------------------------------------
class TestPhaseTimer:
    def test_accumulates_with_injected_clock(self):
        ticks = iter([0.0, 1.0, 10.0, 12.5, 20.0, 20.25])
        timer = PhaseTimer(clock=lambda: next(ticks))
        with timer.phase("probe"):
            pass
        with timer.phase("probe"):
            pass
        with timer.phase("selection"):
            pass
        assert timer.totals == {"probe": 3.5, "selection": 0.25}
        assert timer.as_dict(prefix="wall_") == {
            "wall_probe": 3.5,
            "wall_selection": 0.25,
        }
        timer.reset()
        assert timer.totals == {}

    def test_records_even_when_body_raises(self):
        ticks = iter([0.0, 2.0])
        timer = PhaseTimer(clock=lambda: next(ticks))
        with pytest.raises(RuntimeError):
            with timer.phase("probe"):
                raise RuntimeError("boom")
        assert timer.totals == {"probe": 2.0}

    def test_compose_reports_wall_phases(self):
        w = MicroWorld(n_peers=6)
        w.place("fa", 2)
        w.place("fb", 3)
        result = w.bcp.compose(w.request(FunctionGraph.linear(["fa", "fb"])))
        assert result.success
        for key in ("wall_probe", "wall_selection", "wall_setup"):
            assert key in result.phases
            assert result.phases[key] >= 0.0


# ----------------------------------------------------------------------
# cache invalidation plumbing
# ----------------------------------------------------------------------
class TestCacheInvalidation:
    def test_overlay_clear_reaches_router_and_bcp(self):
        w = MicroWorld(n_peers=6)
        w.place("fa", 2)
        w.place("fb", 3)
        assert w.bcp.compose(w.request(FunctionGraph.linear(["fa", "fb"]))).success
        assert w.bcp._pair_qos and w.bcp._comp_qos
        assert w.overlay.router._path_cache
        w.overlay.clear_caches()
        assert not w.bcp._pair_qos and not w.bcp._comp_qos
        assert not w.overlay.router._path_cache


# ----------------------------------------------------------------------
# end-to-end A/B: fast path on vs everything off
# ----------------------------------------------------------------------
class TestFastPathEquivalence:
    N_REQUESTS = 200

    @staticmethod
    def reset_global_ids(monkeypatch):
        """Restart the process-global id counters.

        Reservation tokens embed request and component ids; replaying
        the scenario with identical ids makes the two runs bit-identical
        (token-set iteration order and all).  ``monkeypatch`` restores
        the original — never-advanced — counters afterwards, so ids stay
        unique for the rest of the test session."""
        import itertools

        from repro.core import probe as probe_mod
        from repro.core import request as request_mod
        from repro.services import component as component_mod

        monkeypatch.setattr(component_mod, "_component_ids", itertools.count(1))
        monkeypatch.setattr(request_mod, "_request_ids", itertools.count(1))
        monkeypatch.setattr(probe_mod, "_probe_ids", itertools.count(1))

    def run_batch(self, fast: bool):
        bcp_config = BCPConfig(
            budget=32,
            wave_memoization=fast,
            vectorized_scoring=fast,
        )
        scenario = simulation_testbed(
            n_ip=300,
            n_peers=60,
            n_functions=15,
            request_config=RequestConfig(function_count=(3, 3)),
            bcp_config=bcp_config,
            seed=0,
        )
        if not fast:
            scenario.net.pool.set_vectorized(False)
            scenario.overlay.router.set_path_cache(False)
        outcomes = [
            self.outcome(scenario.net.compose(r, budget=32))
            for r in scenario.requests.batch(self.N_REQUESTS)
        ]
        return outcomes, dict(scenario.net.ledger.count), dict(scenario.net.ledger.bytes)

    def outcome(self, result):
        return (
            result.success,
            structural_signature(result.best) if result.best else None,
            result.best_cost,
            result.probes_sent,
            result.candidates_examined,
            len(result.qualified),
            result.failure_reason,
        )

    def test_seeded_batch_is_bit_identical(self, monkeypatch):
        self.reset_global_ids(monkeypatch)
        fast_out, fast_count, fast_bytes = self.run_batch(True)
        self.reset_global_ids(monkeypatch)
        slow_out, slow_count, slow_bytes = self.run_batch(False)
        assert sum(1 for o in fast_out if o[0]) > self.N_REQUESTS // 2
        for i, (f, s) in enumerate(zip(fast_out, slow_out)):
            assert f == s, f"request {i} diverged"
        assert fast_count == slow_count
        assert fast_bytes == slow_bytes
