"""Tests for structured event tracing."""

import json

import numpy as np
import pytest

from repro.sim.engine import Simulator
from repro.sim.tracing import EventTrace, TraceEvent, trace_churn, trace_sessions


class TestEventTrace:
    def test_record_uses_sim_clock(self):
        sim = Simulator()
        trace = EventTrace(sim)
        sim.schedule(3.5, trace.record, "tick")
        sim.run()
        assert trace.events[0].time == 3.5

    def test_record_explicit_time_and_fields(self):
        trace = EventTrace()
        e = trace.record("failure", time=7.0, peer=3, recovered=True)
        assert e.time == 7.0
        assert e.fields == {"peer": 3, "recovered": True}

    def test_capacity_drops_oldest(self):
        trace = EventTrace(capacity=3)
        for i in range(5):
            trace.record("e", time=float(i), i=i)
        assert len(trace) == 3
        assert trace.dropped == 2
        assert [e.fields["i"] for e in trace.events] == [2, 3, 4]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            EventTrace(capacity=0)

    def test_select_by_category_and_window(self):
        trace = EventTrace()
        for i in range(10):
            trace.record("a" if i % 2 == 0 else "b", time=float(i))
        assert len(trace.select(category="a")) == 5
        assert len(trace.select(since=3.0, until=7.0)) == 4
        assert len(trace.select(category="b", since=3.0, until=7.0)) == 2

    def test_select_predicate(self):
        trace = EventTrace()
        trace.record("x", time=0.0, peer=1)
        trace.record("x", time=1.0, peer=2)
        out = trace.select(where=lambda e: e.fields.get("peer") == 2)
        assert len(out) == 1

    def test_categories_counts(self):
        trace = EventTrace()
        trace.record("a", time=0.0)
        trace.record("a", time=1.0)
        trace.record("b", time=2.0)
        assert trace.categories() == {"a": 2, "b": 1}

    def test_jsonl_round_trip(self, tmp_path):
        trace = EventTrace()
        trace.record("fail", time=1.5, peer=7)
        path = tmp_path / "trace.jsonl"
        assert trace.to_jsonl(path) == 1
        row = json.loads(path.read_text().strip())
        assert row == {"time": 1.5, "category": "fail", "peer": 7}

    def test_tail(self):
        trace = EventTrace()
        for i in range(30):
            trace.record("e", time=float(i))
        assert len(trace.tail(5)) == 5
        assert trace.tail(5)[-1].time == 29.0


class TestTaps:
    def test_trace_churn(self):
        from repro.sim.churn import ChurnProcess
        from repro.sim.network import MessageNetwork

        sim = Simulator()
        net = MessageNetwork(sim, latency_fn=lambda a, b: 0.01)

        class Stub:
            def __init__(self, node_id):
                self.node_id = node_id

            def on_message(self, msg):
                pass

        for i in range(5):
            net.register(Stub(i))
        churn = ChurnProcess(sim, net, fail_fraction=0.0, downtime=2.0,
                             rng=np.random.default_rng(0))
        trace = EventTrace(sim)
        trace_churn(churn, trace)
        churn.fail(3)
        sim.run()
        assert trace.categories() == {"peer_departed": 1, "peer_arrived": 1}
        departed = trace.select(category="peer_departed")[0]
        assert departed.fields["peer"] == 3

    def test_trace_sessions(self):
        from repro.core.session import RecoveryConfig, SessionManager
        from repro.core.function_graph import FunctionGraph
        from worlds import MicroWorld

        world = MicroWorld(n_peers=10)
        world.place("fa", peer=2)
        sim = Simulator()
        mgr = SessionManager(
            sim, world.bcp, config=RecoveryConfig(proactive=False, reactive=False)
        )
        trace = EventTrace(sim)
        trace_sessions(mgr, trace)
        session = mgr.establish(
            world.request(FunctionGraph.linear(["fa"]), source=0, dest=9, duration=100.0)
        )
        world.kill(2)
        mgr.peer_departed(2)
        sim.run(until=5.0)
        failures = trace.select(category="session_failure")
        assert len(failures) == 1
        assert failures[0].fields["recovered"] is False
