"""The composition strategy registry and its algorithms.

Three pillars: (1) the registry resolves every advertised name and the
docs never drift from it; (2) the BCP adapter is *bit-identical* to the
direct BCP path on a seeded 200-request replay — strategies are a
dispatch layer, not a behaviour change; (3) the new anytime composers
(``backtrack``, ``decompose``) return valid, QoS-qualified graphs on
large DAGs and match the exact optimum where the optimum is computable.
"""

import asyncio
import itertools
import math
import re
import pathlib

import pytest

from repro.core.baselines import OptimalComposer, SearchSpaceExceeded
from repro.core.bcp import BCPConfig
from repro.core.cost import psi_cost
from repro.core.function_graph import FunctionGraph
from repro.core.service_graph import ServiceGraph
from repro.core.strategies import (
    UnknownStrategyError,
    create_strategy,
    get_strategy,
    strategy_names,
)
from repro.workload.generator import RequestConfig
from repro.workload.largegraph import LargeGraphConfig, largegraph_world
from repro.workload.scenarios import simulation_testbed

from worlds import MicroWorld

DOCS = pathlib.Path(__file__).resolve().parent.parent / "docs"

EXPECTED_NAMES = {
    "backtrack",
    "bcp",
    "centralized",
    "decompose",
    "optimal",
    "random",
    "static",
}


def structural_signature(graph):
    return (
        graph.pattern.edges,
        frozenset((fn, m.peer) for fn, m in graph.assignment.items()),
    )


def populated_micro_world():
    """3 functions × 2–3 candidates each — exhaustively checkable."""
    world = MicroWorld(n_peers=8)
    world.place("fa", 2, delay=0.004, cpu=12.0)
    world.place("fa", 3, delay=0.008, cpu=6.0)
    world.place("fb", 4, delay=0.006, cpu=10.0)
    world.place("fb", 5, delay=0.003, cpu=14.0)
    world.place("fb", 6, delay=0.010, cpu=4.0)
    world.place("fc", 1, delay=0.005, cpu=8.0)
    world.place("fc", 6, delay=0.002, cpu=16.0)
    return world


def micro_context(world):
    from repro.core.strategies import StrategyContext

    return StrategyContext(
        overlay=world.overlay,
        pool=world.pool,
        registry=world.registry,
        config=world.bcp.config,
        alive=world.bcp.alive,
        rng=world.bcp.rng,
        bcp=world.bcp,
    )


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_advertised_names_resolve(self):
        assert EXPECTED_NAMES <= set(strategy_names())
        for name in strategy_names():
            cls = get_strategy(name)
            assert cls.name == name

    def test_unknown_name_raises_with_known_list(self):
        with pytest.raises(UnknownStrategyError, match="backtrack"):
            get_strategy("definitely-not-a-strategy")

    def test_only_bcp_runs_without_global_view(self):
        local = [n for n in strategy_names() if not get_strategy(n).requires_global_view]
        assert local == ["bcp"]

    def test_docs_listed_strategies_resolve(self):
        """Every `name` in the ARCHITECTURE strategy table must exist —
        the same drift gate CI applies to the docs."""
        text = (DOCS / "ARCHITECTURE.md").read_text()
        rows = re.findall(r"^\|\s*`([a-z]+)`\s*\|", text, flags=re.MULTILINE)
        assert set(rows) >= EXPECTED_NAMES
        for name in rows:
            get_strategy(name)  # raises on drift

    def test_spidernet_use_composer_roundtrip(self):
        world = largegraph_world(LargeGraphConfig(n_functions=5, seed=0), n_peers=10, n_ip=60)
        strategy = world.net.use_composer("backtrack")
        assert world.net.composer is strategy
        assert world.net.use_composer(None) is None
        assert world.net.composer is None


# ----------------------------------------------------------------------
# BCP adapter: bit-identical to the direct path
# ----------------------------------------------------------------------
class TestBCPAdapterEquivalence:
    N_REQUESTS = 200

    @staticmethod
    def reset_global_ids(monkeypatch):
        from repro.core import probe as probe_mod
        from repro.core import request as request_mod
        from repro.services import component as component_mod

        monkeypatch.setattr(component_mod, "_component_ids", itertools.count(1))
        monkeypatch.setattr(request_mod, "_request_ids", itertools.count(1))
        monkeypatch.setattr(probe_mod, "_probe_ids", itertools.count(1))

    def run_batch(self, via_registry: bool):
        scenario = simulation_testbed(
            n_ip=300,
            n_peers=60,
            n_functions=15,
            request_config=RequestConfig(function_count=(3, 3)),
            bcp_config=BCPConfig(budget=32),
            seed=0,
        )
        if via_registry:
            scenario.net.use_composer("bcp")
        outcomes = [
            self.outcome(scenario.net.compose(r, budget=32))
            for r in scenario.requests.batch(self.N_REQUESTS)
        ]
        return outcomes, dict(scenario.net.ledger.count)

    def outcome(self, result):
        # everything observable except phases (the adapter adds ops_*)
        return (
            result.success,
            structural_signature(result.best) if result.best else None,
            result.best_cost,
            result.probes_sent,
            result.candidates_examined,
            len(result.qualified),
            result.failure_reason,
        )

    def test_seeded_batch_is_bit_identical(self, monkeypatch):
        self.reset_global_ids(monkeypatch)
        direct_out, direct_count = self.run_batch(False)
        self.reset_global_ids(monkeypatch)
        registry_out, registry_count = self.run_batch(True)
        assert sum(1 for o in direct_out if o[0]) > self.N_REQUESTS // 2
        for i, (d, r) in enumerate(zip(direct_out, registry_out)):
            assert d == r, f"request {i} diverged through the registry"
        assert direct_count == registry_count

    def test_adapter_adds_profiling_keys(self):
        world = populated_micro_world()
        ctx = micro_context(world)
        strategy = create_strategy("bcp", ctx)
        request = world.request(FunctionGraph.linear(["fa", "fb"]), source=0, dest=7)
        result = strategy.compose(request, budget=16)
        assert result.success
        assert "ops_probes_sent" in result.phases


# ----------------------------------------------------------------------
# exactness: backtrack / decompose vs the enumerated optimum
# ----------------------------------------------------------------------
class TestExactness:
    def brute_force_cost(self, world, request):
        duplicates = {
            fn: world.registry.duplicates(fn)
            for fn in request.function_graph.functions
        }
        best = math.inf
        fns = list(request.function_graph.functions)
        for combo in itertools.product(*(duplicates[f] for f in fns)):
            graph = ServiceGraph(
                pattern=request.function_graph,
                assignment=dict(zip(fns, combo)),
                source_peer=request.source_peer,
                dest_peer=request.dest_peer,
                base_bandwidth=request.bandwidth,
            )
            if not request.qos.satisfied_by(graph.end_to_end_qos(world.overlay)):
                continue
            best = min(best, psi_cost(graph, world.pool))
        return best

    def test_backtrack_matches_brute_force(self):
        world = populated_micro_world()
        request = world.request(FunctionGraph.linear(["fa", "fb", "fc"]), source=0, dest=7)
        expected = self.brute_force_cost(world, request)
        strategy = create_strategy("backtrack", micro_context(world))
        result = strategy.compose(request)
        assert result.success
        assert result.best_cost == pytest.approx(expected)

    def test_backtrack_matches_optimal_composer(self):
        world = populated_micro_world()
        request = world.request(FunctionGraph.linear(["fa", "fb", "fc"]), source=0, dest=7)
        optimal = OptimalComposer(world.overlay, world.pool, world.registry)
        # confirm=False: admission would allocate the winner's resources
        # and skew the second composer's ψλ evaluation
        opt = optimal.compose(request, confirm=False)
        bt = create_strategy("backtrack", micro_context(world)).compose(
            request, confirm=False
        )
        assert opt.success and bt.success
        assert bt.best_cost == pytest.approx(opt.best_cost)

    def test_decompose_exact_when_one_partition_covers_all(self):
        world = populated_micro_world()
        request = world.request(FunctionGraph.linear(["fa", "fb"]), source=0, dest=7)
        expected = self.brute_force_cost(world, request)
        strategy = create_strategy(
            "decompose", micro_context(world),
            partition_size=8, per_partition_k=32, beam_width=32,
        )
        result = strategy.compose(request)
        assert result.success
        assert result.best_cost == pytest.approx(expected)


# ----------------------------------------------------------------------
# OptimalComposer: pruning keeps exactness, the guard keeps it honest
# ----------------------------------------------------------------------
class TestOptimalComposer:
    def test_search_space_guard_raises_clearly(self):
        world = populated_micro_world()
        request = world.request(FunctionGraph.linear(["fa", "fb", "fc"]), source=0, dest=7)
        optimal = OptimalComposer(
            world.overlay, world.pool, world.registry, max_search_space=2
        )
        with pytest.raises(SearchSpaceExceeded, match="backtrack"):
            optimal.compose(request)

    def test_guard_triggers_on_generated_large_graphs(self):
        world = largegraph_world(
            LargeGraphConfig(n_functions=20, candidate_density=3, seed=0),
            n_peers=20, n_ip=100,
        )
        strategy = create_strategy("optimal", world.net.strategy_context())
        with pytest.raises(SearchSpaceExceeded):
            strategy.compose(world.request)

    def test_pruned_search_still_finds_the_optimum(self):
        world = populated_micro_world()
        request = world.request(FunctionGraph.linear(["fa", "fb", "fc"]), source=0, dest=7)
        optimal = OptimalComposer(world.overlay, world.pool, world.registry)
        result = optimal.compose(request, confirm=False)
        assert result.success
        expected = TestExactness().brute_force_cost(world, request)
        assert result.best_cost == pytest.approx(expected)
        # pruning counters prove the exhaustive walk was actually cut
        assert result.phases.get("ops_pruned_bound", 0) > 0


# ----------------------------------------------------------------------
# large generated DAGs: every strategy behaves, anytime ones deliver
# ----------------------------------------------------------------------
class TestLargeGraphValidity:
    @pytest.fixture(scope="class")
    def world(self):
        return largegraph_world(
            LargeGraphConfig(
                kind="layered", n_functions=24, candidate_density=3, seed=4
            ),
            n_peers=24,
            n_ip=120,
        )

    def assert_valid(self, result, request):
        if not result.success:
            return
        graph = result.best
        assert graph is not None
        assert set(graph.assignment) == set(request.function_graph.functions)
        for fn, meta in graph.assignment.items():
            assert meta.function == fn
        assert request.qos.satisfied_by(result.best_qos)

    @pytest.mark.parametrize("name", ["backtrack", "decompose"])
    def test_anytime_strategies_compose_large_dags(self, world, name):
        options = {"node_limit": 60_000} if name == "backtrack" else {}
        strategy = create_strategy(name, world.net.strategy_context(), **options)
        result = strategy.compose(world.request, confirm=False)
        assert result.success, result.failure_reason
        self.assert_valid(result, world.request)

    @pytest.mark.parametrize("name", ["bcp", "random", "static"])
    def test_remaining_strategies_return_wellformed_results(self, world, name):
        strategy = create_strategy(name, world.net.strategy_context())
        result = strategy.compose(world.request, confirm=False)
        # success is not required at this depth — validity of whatever
        # comes back is
        self.assert_valid(result, world.request)

    def test_centralized_guard_declines_large_dags(self, world):
        """Centralized enumerates the full candidate product (3^24 here) —
        the size guard must refuse instead of melting the machine."""
        strategy = create_strategy("centralized", world.net.strategy_context())
        with pytest.raises(SearchSpaceExceeded, match="backtrack"):
            strategy.compose(world.request, confirm=False)


# ----------------------------------------------------------------------
# live cluster plumbing
# ----------------------------------------------------------------------
class TestLiveClusterComposer:
    def _config(self, **overrides):
        from repro.net import ClusterConfig

        base = dict(
            n_peers=6, n_functions=5, seed=2, capacity_scale=4.0,
            distributed=False,
        )
        base.update(overrides)
        return ClusterConfig(**base)

    def test_cluster_routes_through_selected_composer(self):
        from repro.net import LiveCluster
        from repro.sim.tracing import EventTrace

        async def scenario():
            trace = EventTrace()
            cluster = LiveCluster(self._config(composer="backtrack"), trace=trace)
            async with cluster:
                request = cluster.scenario.requests.next_request()
                result = await cluster.compose(request, confirm=False, timeout=60)
            return cluster, trace, result

        cluster, trace, result = asyncio.run(scenario())
        assert cluster.errors() == []
        assert result.success
        started = [
            e for e in trace.events if e.category == "compose_started"
        ]
        assert started and started[0].fields["composer"] == "backtrack"
        assert result.probes_sent == 0  # no probing: global-view search

    def test_distributed_mode_rejects_global_view_strategies(self):
        from repro.net import LiveCluster

        with pytest.raises(ValueError, match="global"):
            LiveCluster(self._config(composer="backtrack", distributed=True))

    def test_unknown_composer_rejected_at_build(self):
        from repro.net import LiveCluster

        with pytest.raises(UnknownStrategyError):
            LiveCluster(self._config(composer="nope"))


# ----------------------------------------------------------------------
# experiment harness integration
# ----------------------------------------------------------------------
class TestExperimentIntegration:
    def test_fig8_runs_baselines_through_registry(self):
        from repro.experiments.fig8_success_ratio import Fig8Config, run_fig8

        cfg = Fig8Config(
            n_ip=80, n_peers=16, n_functions=6, workloads=(2,),
            duration=4, probing_fractions=(0.2,), seed=1,
        )
        result = run_fig8(cfg)
        labels = {s.label for s in result.series}
        assert {"probing-0.2", "optimal", "random", "static"} <= labels
        for s in result.series:
            assert len(s.as_rows()) == 1
