"""Tests for the event-driven (simulated-mode) BCP executor."""

import pytest

from repro.core.async_bcp import AsyncBCP
from repro.core.bcp import BCPConfig
from repro.core.function_graph import FunctionGraph
from repro.sim.engine import Simulator

from worlds import MicroWorld


def make_async(world, soft_timeout=30.0):
    sim = Simulator()
    return sim, AsyncBCP(sim, world.bcp, soft_state_timeout=soft_timeout)


def run_compose(world, sim, abcp, req, budget=None, confirm=False, until=120.0):
    results = []
    abcp.compose(req, budget=budget, confirm=confirm, callback=results.append)
    sim.run(until=until)
    assert len(results) == 1, "callback must fire exactly once"
    return results[0]


class TestBasicOperation:
    def test_simple_composition_succeeds(self):
        world = MicroWorld(config=BCPConfig(budget=16))
        world.place("fa", peer=2)
        sim, abcp = make_async(world)
        req = world.request(FunctionGraph.linear(["fa"]))
        result = run_compose(world, sim, abcp, req)
        assert result.success
        assert result.best.component("fa").peer == 2

    def test_matches_synchronous_mode(self):
        def build():
            world = MicroWorld(config=BCPConfig(budget=32, objective="delay"))
            for fn, peers in (("fa", (2, 3)), ("fb", (4, 5))):
                for p in peers:
                    world.place(fn, peer=p, delay=0.001 * p)
            return world

        world_sync = build()
        req = world_sync.request(FunctionGraph.linear(["fa", "fb"]), source=0, dest=7)
        sync_result = world_sync.bcp.compose(req, confirm=False)

        world_async = build()
        sim, abcp = make_async(world_async)
        req2 = world_async.request(FunctionGraph.linear(["fa", "fb"]), source=0, dest=7)
        async_result = run_compose(world_async, sim, abcp, req2)

        assert async_result.success and sync_result.success
        # identical worlds, identical winners and QoS
        assert async_result.best_qos.get("delay") == pytest.approx(
            sync_result.best_qos.get("delay")
        )
        assert async_result.candidates_examined == sync_result.candidates_examined

    def test_setup_time_is_virtual_elapsed(self):
        world = MicroWorld(config=BCPConfig(budget=8, collect_timeout=2.0))
        world.place("fa", peer=2)
        sim, abcp = make_async(world)
        req = world.request(FunctionGraph.linear(["fa"]))
        result = run_compose(world, sim, abcp, req)
        assert result.success
        # selection fires at the collection timeout; ack follows
        assert result.setup_time >= 2.0
        assert result.phases["setup_ack"] > 0

    def test_invalid_budget_rejected(self):
        world = MicroWorld()
        world.place("fa", peer=2)
        sim, abcp = make_async(world)
        with pytest.raises(ValueError):
            abcp.compose(world.request(FunctionGraph.linear(["fa"])), budget=0)

    def test_bad_soft_timeout_rejected(self):
        world = MicroWorld()
        with pytest.raises(ValueError):
            AsyncBCP(Simulator(), world.bcp, soft_state_timeout=0.0)

    def test_failure_no_components(self):
        world = MicroWorld()
        sim, abcp = make_async(world)
        req = world.request(FunctionGraph.linear(["ghost"]))
        result = run_compose(world, sim, abcp, req)
        assert not result.success
        assert "no probe" in result.failure_reason


class TestDagAndCommutation:
    def test_diamond_merges_event_driven(self):
        world = MicroWorld(config=BCPConfig(budget=32))
        fg = FunctionGraph.from_edges(
            ["fa", "fb", "fc", "fd"],
            [("fa", "fb"), ("fa", "fc"), ("fb", "fd"), ("fc", "fd")],
        )
        for fn, p in (("fa", 2), ("fb", 3), ("fc", 4), ("fd", 5)):
            world.place(fn, peer=p)
        sim, abcp = make_async(world)
        result = run_compose(world, sim, abcp, world.request(fg, source=0, dest=7))
        assert result.success
        assert set(result.best.assignment) == {"fa", "fb", "fc", "fd"}

    def test_commutation_explored(self):
        world = MicroWorld(config=BCPConfig(budget=32, objective="delay"))
        fg = FunctionGraph.linear(["fa", "fb", "fc"], [("fb", "fc")])
        world.place("fa", peer=1)
        world.place("fb", peer=6)
        world.place("fc", peer=2)
        sim, abcp = make_async(world)
        result = run_compose(world, sim, abcp, world.request(fg, source=0, dest=7))
        assert result.success
        assert result.best.pattern.topological_order() == ["fa", "fc", "fb"]


class TestChurnDuringProbing:
    def test_peer_dying_mid_flight_loses_probe(self):
        world = MicroWorld(config=BCPConfig(budget=8))
        world.place("fa", peer=6)  # 60 ms from source: plenty of in-flight time
        sim, abcp = make_async(world)
        req = world.request(FunctionGraph.linear(["fa"]))
        abcp_handle = []
        abcp.compose(req, confirm=False, callback=abcp_handle.append)
        sim.schedule(0.010, world.kill, 6)  # dies while the probe flies
        sim.run(until=60.0)
        result = abcp_handle[0]
        assert not result.success

    def test_survivor_component_still_wins(self):
        world = MicroWorld(config=BCPConfig(budget=16))
        world.place("fa", peer=6)
        world.place("fa", peer=2)
        sim, abcp = make_async(world)
        req = world.request(FunctionGraph.linear(["fa"]))
        out = []
        abcp.compose(req, confirm=False, callback=out.append)
        sim.schedule(0.010, world.kill, 6)
        sim.run(until=60.0)
        result = out[0]
        assert result.success
        assert result.best.component("fa").peer == 2

    def test_host_death_before_ack_fails_setup(self):
        world = MicroWorld(config=BCPConfig(budget=8, collect_timeout=1.0))
        world.place("fa", peer=4)
        sim, abcp = make_async(world)
        req = world.request(FunctionGraph.linear(["fa"]))
        out = []
        abcp.compose(req, confirm=True, callback=out.append)
        # die after selection (t=1.0) but before the ack completes
        sim.schedule(1.0 + 1e-6, world.kill, 4)
        sim.run(until=60.0)
        result = out[0]
        assert not result.success
        assert "ack" in result.failure_reason
        assert world.pool.active_tokens() == []


class TestSoftStateExpiry:
    def test_unconfirmed_reservations_expire(self):
        world = MicroWorld(config=BCPConfig(budget=8, collect_timeout=5.0))
        world.place("fa", peer=2, cpu=30.0)
        sim, abcp = make_async(world, soft_timeout=1.0)
        req = world.request(FunctionGraph.linear(["fa"]))
        out = []
        abcp.compose(req, confirm=True, callback=out.append)
        # before expiry the reservation is held
        sim.run(until=0.5)
        assert world.pool.available(2).get("cpu") == pytest.approx(70.0)
        # expiry fires before the 5 s collection window ends: by selection
        # time the reservation is gone, so the ack pass fails the setup
        sim.run(until=60.0)
        result = out[0]
        assert not result.success
        assert world.pool.available(2).get("cpu") == pytest.approx(100.0)
        assert world.pool.active_tokens() == []

    def test_confirmed_session_does_not_expire(self):
        world = MicroWorld(config=BCPConfig(budget=8, collect_timeout=0.5))
        world.place("fa", peer=2, cpu=30.0)
        sim, abcp = make_async(world, soft_timeout=2.0)
        req = world.request(FunctionGraph.linear(["fa"]))
        out = []
        abcp.compose(req, confirm=True, callback=out.append)
        sim.run(until=120.0)  # far beyond the soft timeout
        result = out[0]
        assert result.success
        # the confirmed session still holds its resources
        assert world.pool.available(2).get("cpu") == pytest.approx(70.0)
        for token in result.session_tokens:
            world.pool.release(token)

    def test_loser_reservations_released_at_selection(self):
        world = MicroWorld(config=BCPConfig(budget=16, collect_timeout=0.5))
        world.place("fa", peer=2, cpu=20.0)
        world.place("fa", peer=3, cpu=20.0)
        sim, abcp = make_async(world, soft_timeout=30.0)
        req = world.request(FunctionGraph.linear(["fa"]))
        out = []
        abcp.compose(req, confirm=True, callback=out.append)
        sim.run(until=120.0)
        result = out[0]
        assert result.success
        winner = result.best.component("fa").peer
        loser = 3 if winner == 2 else 2
        assert world.pool.available(loser).get("cpu") == pytest.approx(100.0)
        for token in result.session_tokens:
            world.pool.release(token)


class TestConcurrentRequests:
    def test_soft_allocation_arbitrates_contention(self):
        """Two concurrent requests compete for one scarce component slot."""
        world = MicroWorld(config=BCPConfig(budget=8, collect_timeout=0.5), cpu=25.0)
        world.place("fa", peer=2, cpu=20.0)  # only one session fits
        sim, abcp = make_async(world)
        out = []
        r1 = world.request(FunctionGraph.linear(["fa"]), source=0, dest=1)
        r2 = world.request(FunctionGraph.linear(["fa"]), source=3, dest=4)
        abcp.compose(r1, confirm=True, callback=out.append)
        abcp.compose(r2, confirm=True, callback=out.append)
        sim.run(until=60.0)
        assert len(out) == 2
        successes = [r for r in out if r.success]
        assert len(successes) == 1  # exactly one wins, no over-commitment
        world.pool.check_invariants()
        for token in successes[0].session_tokens:
            world.pool.release(token)

    def test_many_interleaved_requests_keep_invariants(self):
        world = MicroWorld(
            n_peers=10, config=BCPConfig(budget=8, collect_timeout=0.5), cpu=60.0
        )
        for p in (2, 3, 4):
            world.place("fa", peer=p, cpu=25.0)
        sim, abcp = make_async(world)
        out = []
        for i in range(6):
            req = world.request(FunctionGraph.linear(["fa"]), source=0, dest=9)
            sim.schedule(0.05 * i, abcp.compose, req, None, True, out.append)
        sim.run(until=120.0)
        assert len(out) == 6
        world.pool.check_invariants()
        for r in out:
            for token in r.session_tokens:
                world.pool.release(token)
        world.pool.check_invariants()
