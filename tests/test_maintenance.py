"""Tests for live overlay views and churn repair."""

import networkx as nx
import numpy as np
import pytest

from repro.topology.maintenance import LiveOverlayView, OverlayMaintainer, PartitionError
from repro.topology.overlay import Overlay
from repro.topology.routing import OverlayRouter


def line_overlay(n=6, unit=0.01):
    """A path graph 0-1-2-...-(n-1): every interior peer is a cut vertex."""
    g = nx.Graph()
    g.add_nodes_from(range(n))
    for i in range(n - 1):
        g.add_edge(i, i + 1, delay=unit, bandwidth=10.0, loss_add=0.0001)
    return Overlay(graph=g, router=OverlayRouter(g), kind="line")


class World:
    def __init__(self, overlay):
        self.overlay = overlay
        self.dead = set()
        self.view = LiveOverlayView(overlay, alive=lambda p: p not in self.dead)

    def kill(self, peer):
        self.dead.add(peer)
        self.view.invalidate()

    def revive(self, peer):
        self.dead.discard(peer)
        self.view.invalidate()


class TestLiveOverlayView:
    def test_matches_static_when_all_alive(self):
        w = World(line_overlay())
        assert w.view.latency(0, 5) == pytest.approx(w.overlay.latency(0, 5))

    def test_dead_relay_partitions(self):
        w = World(line_overlay())
        w.kill(3)
        with pytest.raises(PartitionError):
            w.view.latency(0, 5)
        assert w.view.reachable(0, 2)
        assert not w.view.reachable(2, 4)

    def test_dead_endpoint_raises(self):
        w = World(line_overlay())
        w.kill(0)
        with pytest.raises(PartitionError):
            w.view.latency(0, 5)

    def test_revival_heals(self):
        w = World(line_overlay())
        w.kill(3)
        assert not w.view.reachable(0, 5)
        w.revive(3)
        assert w.view.reachable(0, 5)

    def test_components_split_and_merge(self):
        w = World(line_overlay())
        assert len(w.view.components()) == 1
        w.kill(3)
        assert len(w.view.components()) == 2
        w.view.add_link(2, 4, delay=0.05)
        assert len(w.view.components()) == 1

    def test_repair_link_used_for_routing(self):
        w = World(line_overlay())
        w.kill(3)
        w.view.add_link(2, 4, delay=0.05)
        # 0-1-2 ~ 4-5 through the repair link
        assert w.view.latency(0, 5) == pytest.approx(2 * 0.01 + 0.05 + 0.01)

    def test_self_latency_zero(self):
        w = World(line_overlay())
        assert w.view.latency(2, 2) == 0.0

    def test_self_link_rejected(self):
        w = World(line_overlay())
        with pytest.raises(ValueError):
            w.view.add_link(2, 2, delay=0.01)

    def test_isolated_peers(self):
        w = World(line_overlay())
        w.kill(1)
        assert w.view.isolated_peers() == [0]


class TestOverlayMaintainer:
    def test_heals_partition(self):
        w = World(line_overlay())
        maintainer = OverlayMaintainer(w.view, min_degree=1)
        w.kill(3)
        assert not w.view.reachable(0, 5)
        added = maintainer.repair()
        assert added >= 1
        assert w.view.reachable(0, 5)
        assert len(w.view.components()) == 1

    def test_restores_min_degree(self):
        w = World(line_overlay(8))
        maintainer = OverlayMaintainer(w.view, min_degree=2)
        w.kill(1)  # peer 0 loses its only neighbour
        maintainer.repair()
        assert maintainer.live_degree(0) >= 2
        for p in range(8):
            if p not in w.dead:
                assert maintainer.live_degree(p) >= 2

    def test_repair_idempotent(self):
        w = World(line_overlay())
        maintainer = OverlayMaintainer(w.view, min_degree=2)
        w.kill(3)
        maintainer.repair()
        assert maintainer.repair() == 0  # nothing left to fix

    def test_repair_charges_ledger(self):
        w = World(line_overlay())
        maintainer = OverlayMaintainer(w.view, min_degree=2)
        w.kill(3)
        maintainer.repair()
        assert maintainer.ledger.count["overlay_repair"] >= 1

    def test_prefers_nearest_candidates(self):
        w = World(line_overlay(6))
        maintainer = OverlayMaintainer(w.view, min_degree=2)
        w.kill(1)
        maintainer.repair()
        # peer 0's new neighbour should be the closest live peer (2),
        # not something across the line
        repair_partners = {
            (v if u == 0 else u)
            for u, v in w.view.repair_links()
            if 0 in (u, v)
        }
        assert 2 in repair_partners

    def test_survives_mass_failure(self):
        w = World(line_overlay(10))
        maintainer = OverlayMaintainer(w.view, min_degree=2)
        for p in (1, 3, 5, 7):
            w.kill(p)
        maintainer.repair()
        live = [p for p in range(10) if p not in w.dead]
        for a in live:
            for b in live:
                assert w.view.reachable(a, b)

    def test_min_degree_validated(self):
        w = World(line_overlay())
        with pytest.raises(ValueError):
            OverlayMaintainer(w.view, min_degree=0)
