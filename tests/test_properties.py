"""Cross-module property-based tests: protocol invariants over random worlds.

These generate random miniature deployments and check the invariants
that must hold for *any* input — the properties the unit tests check
pointwise:

* BCP never leaks resource reservations, regardless of outcome;
* the probing budget bounds the candidates examined;
* a successful composition satisfies the request it was built for;
* composition is deterministic given the world;
* DHT routing always terminates at the ground-truth responsible node,
  under arbitrary key/origin choices and node deaths.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bcp import BCPConfig
from repro.core.function_graph import FunctionGraph
from repro.dht.id_space import ID_SPACE, key_for

from worlds import MicroWorld


@st.composite
def world_and_request(draw):
    """A random miniature deployment plus a request over it."""
    n_functions = draw(st.integers(min_value=1, max_value=3))
    budget = draw(st.integers(min_value=1, max_value=48))
    seed = draw(st.integers(min_value=0, max_value=2**20))
    rng = np.random.default_rng(seed)
    world = MicroWorld(
        n_peers=8,
        cpu=float(rng.uniform(40, 120)),
        seed=seed,
        config=BCPConfig(budget=budget),
    )
    fns = [f"f{i}" for i in range(n_functions)]
    for fn in fns:
        for _ in range(int(rng.integers(1, 4))):
            world.place(
                fn,
                peer=int(rng.integers(2, 7)),
                delay=float(rng.uniform(0.001, 0.1)),
                cpu=float(rng.uniform(5, 35)),
            )
    tightness = draw(st.sampled_from([0.15, 0.6, 3.0]))  # tight/medium/loose
    request = world.request(
        FunctionGraph.linear(fns),
        source=0,
        dest=7,
        delay_bound=tightness,
        bandwidth=float(rng.uniform(0.1, 2.0)),
    )
    return world, request, budget


class TestBcpInvariants:
    @given(world_and_request())
    @settings(max_examples=25, deadline=None)
    def test_no_reservation_leaks(self, wr):
        world, request, budget = wr
        result = world.bcp.compose(request, budget=budget, confirm=False)
        assert world.pool.active_tokens() == []
        world.pool.check_invariants()
        for peer in world.overlay.peers():
            # everything returned to full capacity
            assert world.pool.available(peer).get("cpu") == pytest.approx(
                world.pool.capacity(peer).get("cpu")
            )

    @given(world_and_request())
    @settings(max_examples=25, deadline=None)
    def test_budget_bounds_candidates(self, wr):
        world, request, budget = wr
        result = world.bcp.compose(request, budget=budget, confirm=False)
        assert result.candidates_examined <= max(budget, 1)

    @given(world_and_request())
    @settings(max_examples=25, deadline=None)
    def test_success_implies_valid_graph(self, wr):
        world, request, budget = wr
        result = world.bcp.compose(request, budget=budget, confirm=False)
        if not result.success:
            return
        graph = result.best
        assert set(graph.assignment) == set(request.function_graph.functions)
        qos = graph.end_to_end_qos(world.overlay)
        assert request.qos.satisfied_by(qos)
        # the reported QoS matches a fresh evaluation
        for metric, value in result.best_qos.values.items():
            assert qos.values[metric] == pytest.approx(value)

    @given(world_and_request())
    @settings(max_examples=15, deadline=None)
    def test_composition_is_deterministic(self, wr):
        world, request, budget = wr
        r1 = world.bcp.compose(request, budget=budget, confirm=False)
        r2 = world.bcp.compose(request, budget=budget, confirm=False)
        assert r1.success == r2.success
        assert r1.candidates_examined == r2.candidates_examined
        if r1.success:
            assert r1.best.signature() == r2.best.signature()

    @given(world_and_request())
    @settings(max_examples=15, deadline=None)
    def test_confirm_then_release_restores_world(self, wr):
        world, request, budget = wr
        result = world.bcp.compose(request, budget=budget, confirm=True)
        if result.success:
            assert result.session_tokens
            for token in result.session_tokens:
                world.pool.release(token)
        assert world.pool.active_tokens() == []
        world.pool.check_invariants()


class TestDhtInvariants:
    @given(
        st.integers(min_value=0, max_value=2**20),
        st.lists(st.integers(min_value=0, max_value=ID_SPACE - 1), min_size=1, max_size=8),
        st.sets(st.integers(min_value=0, max_value=7), max_size=5),
    )
    @settings(max_examples=25, deadline=None)
    def test_routing_reaches_responsible_under_deaths(self, seed, keys, deaths):
        world = MicroWorld(n_peers=8, seed=seed)
        for peer in deaths:
            world.kill(peer)
        alive_peers = [p for p in range(8) if p not in world.dead]
        if not alive_peers:
            return
        origin = alive_peers[0]
        for key in keys:
            result = world.dht.route(key, origin_peer=origin)
            assert result.responsible_node == world.dht.responsible_node(key)
            assert world.dht.is_alive(result.responsible_node)

    @given(st.lists(st.text(min_size=1, max_size=12), min_size=1, max_size=6, unique=True))
    @settings(max_examples=25, deadline=None)
    def test_put_get_round_trip(self, names):
        world = MicroWorld(n_peers=8, seed=1)
        for i, name in enumerate(names):
            world.dht.put(key_for(name), f"value-{i}", origin_peer=i % 8)
        for i, name in enumerate(names):
            values, _ = world.dht.get(key_for(name), origin_peer=(i + 3) % 8)
            assert f"value-{i}" in values


class TestQuotaBudgetLaws:
    @given(
        st.integers(min_value=1, max_value=256),
        st.integers(min_value=1, max_value=5),
        st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=30, deadline=None)
    def test_arrivals_monotone_in_replication(self, budget, n_functions, replicas):
        """More replicas never reduce the best achievable count bound."""
        from repro.core.quota import ReplicationProportionalQuota, split_budget

        policy = ReplicationProportionalQuota(fraction=1.0, cap=10**6)
        # per-hop spawn count with full knowledge
        i_k = min(budget, policy("f", replicas), replicas)
        assert 1 <= i_k <= replicas
        assert i_k <= budget
