"""Unit tests for instantiated service graphs."""

import pytest

from repro.core.function_graph import FunctionGraph
from repro.core.qos import QoSVector
from repro.core.resources import ResourceVector
from repro.core.service_graph import ServiceGraph
from repro.discovery.metadata import ServiceMetadata
from repro.services.component import QualitySpec


def meta(cid, fn, peer, delay=0.01, bw_factor=1.0):
    return ServiceMetadata(
        component_id=cid,
        function=fn,
        peer=peer,
        qp=QoSVector({"delay": delay, "loss": 0.001}),
        resources=ResourceVector({"cpu": 10.0, "memory": 32.0}),
        input_quality=QualitySpec(),
        output_quality=QualitySpec(),
        bandwidth_factor=bw_factor,
    )


def linear_graph(peers=(2, 3, 4), bw_factors=(1.0, 1.0, 1.0)):
    fg = FunctionGraph.linear(["a", "b", "c"])
    assignment = {
        "a": meta(1, "a", peers[0], bw_factor=bw_factors[0]),
        "b": meta(2, "b", peers[1], bw_factor=bw_factors[1]),
        "c": meta(3, "c", peers[2], bw_factor=bw_factors[2]),
    }
    return ServiceGraph(fg, assignment, source_peer=0, dest_peer=1, base_bandwidth=1.0)


def diamond_graph():
    fg = FunctionGraph.from_edges(
        "abcd", [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
    )
    assignment = {
        "a": meta(1, "a", 2),
        "b": meta(2, "b", 3),
        "c": meta(3, "c", 4),
        "d": meta(4, "d", 5),
    }
    return ServiceGraph(fg, assignment, source_peer=0, dest_peer=1, base_bandwidth=1.0)


class TestValidation:
    def test_missing_assignment_rejected(self):
        fg = FunctionGraph.linear(["a", "b"])
        with pytest.raises(ValueError, match="unassigned"):
            ServiceGraph(fg, {"a": meta(1, "a", 0)}, source_peer=0, dest_peer=1)

    def test_wrong_function_component_rejected(self):
        fg = FunctionGraph.linear(["a"])
        with pytest.raises(ValueError, match="provides"):
            ServiceGraph(fg, {"a": meta(1, "b", 0)}, source_peer=0, dest_peer=1)


class TestStructure:
    def test_components_in_function_order(self):
        sg = linear_graph()
        assert [m.component_id for m in sg.components()] == [1, 2, 3]

    def test_component_ids_frozenset(self):
        assert linear_graph().component_ids() == frozenset({1, 2, 3})

    def test_peers_dedup_preserves_order(self):
        sg = linear_graph(peers=(2, 2, 4))
        assert sg.peers() == [2, 4]
        assert sg.peers(include_endpoints=True) == [0, 2, 4, 1]

    def test_uses_peer_and_component(self):
        sg = linear_graph()
        assert sg.uses_peer(3) and not sg.uses_peer(17)
        assert sg.uses_component(2) and not sg.uses_component(99)

    def test_signature_distinguishes_assignments(self):
        a = linear_graph()
        b = linear_graph(peers=(2, 3, 5))  # different component? same ids
        assert a.signature() == linear_graph().signature()

    def test_overlap_counts_common_components(self):
        a = linear_graph()
        fg = FunctionGraph.linear(["a", "b", "c"])
        assignment = {
            "a": meta(1, "a", 2),
            "b": meta(9, "b", 7),
            "c": meta(3, "c", 4),
        }
        b = ServiceGraph(fg, assignment, source_peer=0, dest_peer=1)
        assert a.overlap(b) == 2


class TestServiceLinks:
    def test_linear_links_with_endpoints(self):
        sg = linear_graph()
        links = sg.service_links()
        assert len(links) == 4  # src->a, a->b, b->c, c->dst
        assert links[0].from_fn is None and links[0].src_peer == 0
        assert links[-1].to_fn is None and links[-1].dst_peer == 1

    def test_bandwidth_factors_compound(self):
        sg = linear_graph(bw_factors=(0.5, 2.0, 1.0))
        links = {(l.from_fn, l.to_fn): l.bandwidth for l in sg.service_links()}
        assert links[(None, "a")] == pytest.approx(1.0)
        assert links[("a", "b")] == pytest.approx(0.5)
        assert links[("b", "c")] == pytest.approx(1.0)
        assert links[("c", None)] == pytest.approx(1.0)

    def test_diamond_links(self):
        sg = diamond_graph()
        pairs = {(l.from_fn, l.to_fn) for l in sg.service_links()}
        assert (None, "a") in pairs and ("d", None) in pairs
        assert ("a", "b") in pairs and ("a", "c") in pairs
        assert ("b", "d") in pairs and ("c", "d") in pairs

    def test_join_takes_worst_branch_rate(self):
        fg = FunctionGraph.from_edges(
            "abcd", [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")]
        )
        assignment = {
            "a": meta(1, "a", 2),
            "b": meta(2, "b", 3, bw_factor=4.0),
            "c": meta(3, "c", 4, bw_factor=0.25),
            "d": meta(4, "d", 5),
        }
        sg = ServiceGraph(fg, assignment, 0, 1, base_bandwidth=1.0)
        links = {(l.from_fn, l.to_fn): l.bandwidth for l in sg.service_links()}
        # d's input rate must be sized for the 4x branch
        assert links[("d", None)] == pytest.approx(4.0)


class TestBranchPathsAndQoS:
    def test_linear_branch_paths(self):
        sg = linear_graph()
        assert sg.branch_paths() == [[0, 2, 3, 4, 1]]

    def test_diamond_branch_paths(self):
        sg = diamond_graph()
        paths = sg.branch_paths()
        assert len(paths) == 2
        for p in paths:
            assert p[0] == 0 and p[-1] == 1

    def test_branch_qos_adds_links_and_qp(self, overlay):
        sg = linear_graph(peers=(2, 3, 4))
        q = sg.branch_qos(overlay, ("a", "b", "c"))
        hops = [(0, 2), (2, 3), (3, 4), (4, 1)]
        expected_delay = sum(overlay.latency(u, v) for u, v in hops) + 3 * 0.01
        assert q.get("delay") == pytest.approx(expected_delay)
        expected_loss = sum(overlay.path_loss_add(u, v) for u, v in hops) + 3 * 0.001
        assert q.get("loss") == pytest.approx(expected_loss)

    def test_colocated_hop_free(self, overlay):
        sg = linear_graph(peers=(2, 2, 2))
        q = sg.branch_qos(overlay, ("a", "b", "c"))
        expected = overlay.latency(0, 2) + overlay.latency(2, 1) + 3 * 0.01
        assert q.get("delay") == pytest.approx(expected)

    def test_end_to_end_is_worst_branch(self, overlay):
        sg = diamond_graph()
        branch_values = [
            sg.branch_qos(overlay, b) for b in sg.pattern.branches()
        ]
        e2e = sg.end_to_end_qos(overlay)
        assert e2e.get("delay") == pytest.approx(
            max(q.get("delay") for q in branch_values)
        )


class TestFailureProbability:
    def test_independent_peers_combine(self):
        sg = linear_graph(peers=(2, 3, 4))
        p = sg.failure_probability(lambda peer: 0.1)
        assert p == pytest.approx(1 - 0.9**3)

    def test_colocated_components_counted_once(self):
        sg = linear_graph(peers=(2, 2, 2))
        assert sg.failure_probability(lambda peer: 0.1) == pytest.approx(0.1)

    def test_zero_failure(self):
        assert linear_graph().failure_probability(lambda p: 0.0) == 0.0

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            linear_graph().failure_probability(lambda p: 1.5)
