"""Shared fixtures: small deterministic topologies and wired middleware.

Topology generation is the slow part, so IP graphs and overlays are
session-scoped (they are never mutated); everything stateful (resource
pools, DHTs, registries, SpiderNet stacks) is rebuilt per test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SpiderNet
from repro.topology import generate_ip_network, mesh_overlay, wan_overlay
from repro.workload import PopulationConfig, RequestConfig, RequestGenerator, generate_population


@pytest.fixture(scope="session")
def ip_graph():
    return generate_ip_network(200, rng=np.random.default_rng(1234))


@pytest.fixture(scope="session")
def overlay(ip_graph):
    return mesh_overlay(ip_graph, n_peers=40, k=3, rng=np.random.default_rng(99))


@pytest.fixture(scope="session")
def wan():
    return wan_overlay(n_peers=30, rng=np.random.default_rng(7))


@pytest.fixture
def net(overlay):
    """A freshly wired SpiderNet stack over the shared overlay."""
    return SpiderNet.build(overlay, rng=np.random.default_rng(5))


@pytest.fixture
def populated_net(overlay):
    """SpiderNet with a deployed 12-function population and a request source."""
    spider = SpiderNet.build(overlay, rng=np.random.default_rng(5))
    population = generate_population(
        overlay, PopulationConfig(n_functions=12), rng=np.random.default_rng(17)
    )
    spider.deploy(population)
    return spider, population


@pytest.fixture
def request_gen(populated_net):
    spider, _ = populated_net
    return RequestGenerator(
        spider.overlay,
        spider.registry.functions(),
        RequestConfig(function_count=(2, 3)),
        rng=np.random.default_rng(23),
    )


@pytest.fixture
def rng():
    return np.random.default_rng(42)
