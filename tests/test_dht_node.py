"""Unit tests for Pastry node state: leaf sets, routing tables, next-hop."""

import pytest

from repro.dht.id_space import ID_SPACE, circular_distance, digit, shared_prefix_len
from repro.dht.node import LeafSet, PastryNodeState, RoutingTable


def mkid(top_digits: str) -> int:
    """Build an id from leading hex digits (rest zero)."""
    val = int(top_digits, 16)
    return val << (128 - 4 * len(top_digits))


class TestLeafSet:
    def test_add_splits_sides(self):
        ls = LeafSet(owner_id=1000, half_size=2)
        ls.add(1001)
        ls.add(999)
        assert 1001 in ls.larger and 999 in ls.smaller

    def test_capacity_keeps_closest(self):
        ls = LeafSet(owner_id=0, half_size=2)
        for v in (10, 5, 20, 2):
            ls.add(v)
        assert ls.larger == [2, 5]

    def test_owner_and_duplicates_ignored(self):
        ls = LeafSet(owner_id=7, half_size=2)
        ls.add(7)
        ls.add(8)
        ls.add(8)
        assert ls.members() == [8]

    def test_remove(self):
        ls = LeafSet(owner_id=0, half_size=2)
        ls.add(5)
        ls.remove(5)
        assert ls.members() == []
        ls.remove(5)  # idempotent

    def test_wraparound_sides(self):
        ls = LeafSet(owner_id=5, half_size=2)
        ls.add(ID_SPACE - 3)  # just counterclockwise of owner
        assert ID_SPACE - 3 in ls.smaller

    def test_covers_within_range(self):
        ls = LeafSet(owner_id=100, half_size=2)
        ls.add(90)
        ls.add(110)
        assert ls.covers(95)
        assert ls.covers(105)
        assert not ls.covers(500)

    def test_closest_includes_owner(self):
        ls = LeafSet(owner_id=100, half_size=2)
        ls.add(90)
        ls.add(110)
        assert ls.closest(99) == 100
        assert ls.closest(91) == 90

    def test_bad_half_size(self):
        with pytest.raises(ValueError):
            LeafSet(0, half_size=0)


class TestRoutingTable:
    def test_slot_for_prefix(self):
        owner = mkid("a0")
        rt = RoutingTable(owner)
        other = mkid("b0")
        row, col = rt.slot_for(other)
        assert row == 0 and col == 0xB

    def test_slot_for_owner_none(self):
        rt = RoutingTable(mkid("a0"))
        assert rt.slot_for(mkid("a0")) is None

    def test_consider_fills_empty_slot(self):
        rt = RoutingTable(mkid("a0"))
        assert rt.consider(mkid("b0"))
        assert rt.get(0, 0xB) == mkid("b0")

    def test_consider_keeps_incumbent_without_latency(self):
        rt = RoutingTable(mkid("a0"))
        first, second = mkid("b1"), mkid("b2")
        rt.consider(first)
        assert not rt.consider(second)
        assert rt.get(0, 0xB) == first

    def test_consider_prefers_lower_latency(self):
        rt = RoutingTable(mkid("a0"))
        near, far = mkid("b1"), mkid("b2")
        lat = {near: 0.01, far: 0.5}
        rt.consider(far, lat.get)
        assert rt.consider(near, lat.get)
        assert rt.get(0, 0xB) == near

    def test_remove_only_matching(self):
        rt = RoutingTable(mkid("a0"))
        rt.consider(mkid("b0"))
        rt.remove(mkid("b1"))  # same slot, different node: no-op
        assert rt.get(0, 0xB) == mkid("b0")
        rt.remove(mkid("b0"))
        assert rt.get(0, 0xB) is None

    def test_entries_and_row_entries(self):
        rt = RoutingTable(mkid("a0"))
        rt.consider(mkid("b0"))
        rt.consider(mkid("a1"))  # shares 1 digit -> row 1
        assert set(rt.entries()) == {mkid("b0"), mkid("a1")}
        assert rt.row_entries(0) == [mkid("b0")]


class TestNextHop:
    def test_self_key_is_terminal(self):
        state = PastryNodeState(mkid("a0"), peer=0)
        assert state.next_hop(mkid("a0")) is None

    def test_leaf_set_rule_delivers_to_closest(self):
        owner = 1000
        state = PastryNodeState(owner, peer=0, leaf_half=4)
        for v in (990, 995, 1005, 1010):
            state.learn(v)
        # key 1004 is within leaf range; 1005 is closest
        assert state.next_hop(1004) == 1005
        # key 999 closest to 1000 (owner) -> terminal... 999 is closer to 995? |999-995|=4 vs |999-1000|=1
        assert state.next_hop(999) is None

    def test_prefix_rule_uses_routing_table(self):
        owner = mkid("a000")
        state = PastryNodeState(owner, peer=0, leaf_half=1)
        target_region = mkid("b000")
        state.learn(target_region)
        far_key = mkid("b123")
        hop = state.next_hop(far_key)
        assert hop == target_region

    def test_prefix_match_lengthens_hop_by_hop(self):
        # routing from a000: slot (0, b) holds whoever was learned first;
        # at that node, the next digit is resolved -> prefix grows per hop
        owner = mkid("a000")
        state = PastryNodeState(owner, peer=0, leaf_half=1)
        coarse, fine = mkid("b000"), mkid("b100")
        state.learn(coarse)
        state.learn(fine)
        key = mkid("b1ff")
        first_hop = state.next_hop(key)
        assert first_hop == coarse  # occupies slot (0, 0xb)
        coarse_state = PastryNodeState(coarse, peer=1, leaf_half=1)
        coarse_state.learn(fine)
        second_hop = coarse_state.next_hop(key)
        assert second_hop == fine  # slot (1, 0x1): one digit more matched
        assert shared_prefix_len(second_hop, key) > shared_prefix_len(first_hop, key)

    def test_exclude_forces_alternative(self):
        owner = 1000
        state = PastryNodeState(owner, peer=0, leaf_half=4)
        state.learn(1005)
        state.learn(1006)
        first = state.next_hop(1005)
        assert first == 1005
        alt = state.next_hop(1005, exclude={1005})
        assert alt == 1006

    def test_rare_case_any_closer_node(self):
        owner = mkid("a000")
        state = PastryNodeState(owner, peer=0, leaf_half=1)
        # no routing-table entry for digit 'b', but a known node with the
        # same prefix length that is numerically closer to the key
        closer = mkid("c000")
        state.learn(closer)
        state.routing_table.remove(closer)  # leave it only in the leaf set
        key = mkid("b fff".replace(" ", ""))
        hop = state.next_hop(key)
        # must either terminate (owner closest) or move strictly closer
        if hop is not None:
            assert circular_distance(key, hop) < circular_distance(key, owner)

    def test_forget_removes_everywhere(self):
        state = PastryNodeState(mkid("a0"), peer=0)
        other = mkid("b0")
        state.learn(other)
        assert other in state.known_nodes()
        state.forget(other)
        assert other not in state.known_nodes()

    def test_learn_self_is_noop(self):
        state = PastryNodeState(mkid("a0"), peer=0)
        state.learn(mkid("a0"))
        assert state.known_nodes() == set()
