"""Unit + property tests for resources and soft-state allocation."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.resources import (
    InsufficientResources,
    ResourcePool,
    ResourceVector,
)


class TestResourceVector:
    def test_zero(self):
        z = ResourceVector.zero(("cpu", "memory"))
        assert z.get("cpu") == 0.0

    def test_add_union_of_keys(self):
        s = ResourceVector({"cpu": 1.0}) + ResourceVector({"memory": 2.0})
        assert s.get("cpu") == 1.0 and s.get("memory") == 2.0

    def test_sub_clamps_epsilon_but_rejects_negative(self):
        a = ResourceVector({"cpu": 3.0})
        b = ResourceVector({"cpu": 1.0})
        assert (a - b).get("cpu") == 2.0
        with pytest.raises(ValueError):
            b - a

    def test_fits_within(self):
        cap = ResourceVector({"cpu": 10.0, "memory": 100.0})
        assert ResourceVector({"cpu": 10.0}).fits_within(cap)
        assert not ResourceVector({"cpu": 10.1}).fits_within(cap)

    def test_missing_type_treated_as_zero(self):
        cap = ResourceVector({"cpu": 1.0})
        assert not ResourceVector({"gpu": 0.5}).fits_within(cap)
        assert ResourceVector({}).fits_within(cap)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ResourceVector({"cpu": -1.0})

    def test_get_unknown_zero(self):
        assert ResourceVector({}).get("cpu") == 0.0

    @given(
        st.floats(min_value=0, max_value=1e6),
        st.floats(min_value=0, max_value=1e6),
    )
    @settings(max_examples=30, deadline=None)
    def test_add_then_sub_round_trip(self, a, b):
        va, vb = ResourceVector({"cpu": a}), ResourceVector({"cpu": b})
        assert ((va + vb) - vb).get("cpu") == pytest.approx(a, rel=1e-9, abs=1e-9)


@pytest.fixture
def pool(overlay):
    caps = {p: ResourceVector({"cpu": 100.0, "memory": 512.0}) for p in overlay.peers()}
    return ResourcePool(overlay, caps)


class TestPoolAllocation:
    def test_available_initially_full(self, pool):
        assert pool.available(0).get("cpu") == 100.0

    def test_soft_allocate_reduces_availability(self, pool):
        assert pool.soft_allocate_peer("t1", 0, ResourceVector({"cpu": 30.0}))
        assert pool.available(0).get("cpu") == 70.0

    def test_allocation_beyond_capacity_refused(self, pool):
        assert not pool.soft_allocate_peer("t1", 0, ResourceVector({"cpu": 200.0}))
        assert pool.available(0).get("cpu") == 100.0

    def test_cancel_restores(self, pool):
        pool.soft_allocate_peer("t1", 0, ResourceVector({"cpu": 30.0}))
        pool.cancel("t1")
        assert pool.available(0).get("cpu") == 100.0
        assert not pool.has_token("t1")

    def test_cancel_unknown_token_noop(self, pool):
        pool.cancel("missing")  # no raise

    def test_confirm_then_cancel_rejected(self, pool):
        pool.soft_allocate_peer("t1", 0, ResourceVector({"cpu": 30.0}))
        pool.confirm("t1")
        with pytest.raises(InsufficientResources):
            pool.cancel("t1")
        # claim must survive the failed cancel
        assert pool.has_token("t1")
        assert pool.available(0).get("cpu") == 70.0

    def test_release_firm_claim(self, pool):
        pool.soft_allocate_peer("t1", 0, ResourceVector({"cpu": 30.0}))
        pool.confirm("t1")
        pool.release("t1")
        assert pool.available(0).get("cpu") == 100.0

    def test_confirm_unknown_token_raises(self, pool):
        with pytest.raises(KeyError):
            pool.confirm("nope")

    def test_token_accumulates_multiple_peers(self, pool):
        pool.soft_allocate_peer("t1", 0, ResourceVector({"cpu": 10.0}))
        pool.soft_allocate_peer("t1", 1, ResourceVector({"cpu": 20.0}))
        pool.cancel("t1")
        assert pool.available(0).get("cpu") == 100.0
        assert pool.available(1).get("cpu") == 100.0

    def test_transfer_rekeys_claim(self, pool):
        pool.soft_allocate_peer("old", 0, ResourceVector({"cpu": 10.0}))
        pool.transfer("old", "new")
        assert pool.has_token("new") and not pool.has_token("old")
        pool.cancel("new")
        assert pool.available(0).get("cpu") == 100.0

    def test_transfer_to_existing_token_rejected(self, pool):
        pool.soft_allocate_peer("a", 0, ResourceVector({"cpu": 1.0}))
        pool.soft_allocate_peer("b", 0, ResourceVector({"cpu": 1.0}))
        with pytest.raises(KeyError):
            pool.transfer("a", "b")

    def test_utilisation(self, pool):
        pool.soft_allocate_peer("t", 0, ResourceVector({"cpu": 25.0}))
        assert pool.utilisation(0, "cpu") == pytest.approx(0.25)

    def test_missing_capacity_for_peer_rejected(self, overlay):
        with pytest.raises(ValueError):
            ResourcePool(overlay, {0: ResourceVector({"cpu": 1.0})})


class TestBandwidth:
    def test_link_availability_decreases_on_path_alloc(self, pool, overlay):
        a, b = 0, 5
        links = overlay.router.links(a, b)
        before = [pool.link_available(l) for l in links]
        assert pool.soft_allocate_path("t", a, b, 0.5)
        after = [pool.link_available(l) for l in links]
        for x, y in zip(before, after):
            assert y == pytest.approx(x - 0.5)

    def test_path_allocation_atomic_on_failure(self, pool, overlay):
        a, b = 0, 5
        links = overlay.router.links(a, b)
        bottleneck = min(pool.link_available(l) for l in links)
        assert not pool.soft_allocate_path("t", a, b, bottleneck + 1.0)
        # nothing was deducted
        assert min(pool.link_available(l) for l in links) == pytest.approx(bottleneck)

    def test_path_available_is_bottleneck(self, pool, overlay):
        a, b = 0, 5
        links = overlay.router.links(a, b)
        assert pool.path_available_bandwidth(a, b) == pytest.approx(
            min(pool.link_available(l) for l in links)
        )

    def test_self_path_infinite(self, pool):
        assert math.isinf(pool.path_available_bandwidth(3, 3))
        assert pool.soft_allocate_path("t", 3, 3, 1e9)

    def test_can_carry(self, pool):
        assert pool.can_carry(0, 5, 0.001)
        assert not pool.can_carry(0, 5, 1e9)

    def test_zero_bandwidth_trivially_allocates(self, pool):
        assert pool.soft_allocate_path("t", 0, 5, 0.0)


class TestInvariants:
    def test_check_invariants_clean_pool(self, pool):
        pool.check_invariants()

    def test_random_workload_never_overcommits(self, pool, overlay):
        rng = np.random.default_rng(0)
        live_tokens = []
        for i in range(300):
            action = rng.random()
            if action < 0.5 or not live_tokens:
                token = f"t{i}"
                peer = int(rng.integers(0, overlay.n_peers))
                req = ResourceVector({"cpu": float(rng.uniform(1, 40))})
                if pool.soft_allocate_peer(token, peer, req):
                    live_tokens.append((token, False))
            elif action < 0.75:
                idx = int(rng.integers(0, len(live_tokens)))
                token, firm = live_tokens.pop(idx)
                if firm:
                    pool.release(token)
                else:
                    pool.cancel(token)
            else:
                idx = int(rng.integers(0, len(live_tokens)))
                token, firm = live_tokens[idx]
                if not firm:
                    pool.confirm(token)
                    live_tokens[idx] = (token, True)
            pool.check_invariants()
        for token, firm in live_tokens:
            pool.release(token) if firm else pool.cancel(token)
        for p in overlay.peers():
            assert pool.available(p).get("cpu") == pytest.approx(100.0)
