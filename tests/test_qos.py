"""Unit + property tests for the additive QoS model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.qos import (
    QoSRequirement,
    QoSVector,
    additive_to_loss,
    loss_to_additive,
)

small_floats = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)


class TestLossTransform:
    def test_zero_loss_maps_to_zero(self):
        assert loss_to_additive(0.0) == 0.0

    def test_round_trip(self):
        for rate in (0.001, 0.01, 0.1, 0.5, 0.99):
            assert additive_to_loss(loss_to_additive(rate)) == pytest.approx(rate)

    def test_additivity_matches_survival_product(self):
        a, b = 0.1, 0.2
        combined = loss_to_additive(a) + loss_to_additive(b)
        expected = 1 - (1 - a) * (1 - b)
        assert additive_to_loss(combined) == pytest.approx(expected)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            loss_to_additive(1.0)
        with pytest.raises(ValueError):
            loss_to_additive(-0.1)
        with pytest.raises(ValueError):
            additive_to_loss(-1.0)

    @given(st.floats(min_value=0.0, max_value=0.999))
    @settings(max_examples=50, deadline=None)
    def test_round_trip_property(self, rate):
        assert additive_to_loss(loss_to_additive(rate)) == pytest.approx(rate, abs=1e-12)


class TestQoSVector:
    def test_zero_constructor(self):
        z = QoSVector.zero(["delay", "loss"])
        assert z.get("delay") == 0.0 and z.get("loss") == 0.0

    def test_addition_metric_wise(self):
        a = QoSVector({"delay": 1.0, "loss": 0.1})
        b = QoSVector({"delay": 2.0, "loss": 0.2})
        s = a + b
        assert s.get("delay") == 3.0
        assert s.get("loss") == pytest.approx(0.3)

    def test_addition_metric_mismatch_rejected(self):
        with pytest.raises(ValueError):
            QoSVector({"delay": 1.0}) + QoSVector({"loss": 1.0})

    def test_negative_metric_rejected(self):
        with pytest.raises(ValueError):
            QoSVector({"delay": -1.0})

    def test_nan_rejected(self):
        with pytest.raises(ValueError):
            QoSVector({"delay": float("nan")})

    def test_elementwise_max(self):
        a = QoSVector({"delay": 1.0, "loss": 0.5})
        b = QoSVector({"delay": 2.0, "loss": 0.1})
        m = a.elementwise_max(b)
        assert m.get("delay") == 2.0 and m.get("loss") == 0.5

    def test_scaled(self):
        v = QoSVector({"delay": 2.0}).scaled(1.5)
        assert v.get("delay") == 3.0
        with pytest.raises(ValueError):
            QoSVector({"delay": 1.0}).scaled(-1.0)

    def test_immutability(self):
        v = QoSVector({"delay": 1.0})
        d = v.as_dict()
        d["delay"] = 99.0
        assert v.get("delay") == 1.0

    def test_metrics_sorted(self):
        assert QoSVector({"loss": 0, "delay": 0}).metrics() == ("delay", "loss")

    @given(small_floats, small_floats, small_floats, small_floats)
    @settings(max_examples=30, deadline=None)
    def test_addition_commutative(self, d1, l1, d2, l2):
        a = QoSVector({"delay": d1, "loss": l1})
        b = QoSVector({"delay": d2, "loss": l2})
        assert (a + b).as_dict() == pytest.approx((b + a).as_dict())


class TestQoSRequirement:
    def test_satisfied_by(self):
        req = QoSRequirement({"delay": 1.0, "loss": 0.5})
        assert req.satisfied_by(QoSVector({"delay": 0.9, "loss": 0.5}))
        assert not req.satisfied_by(QoSVector({"delay": 1.1, "loss": 0.1}))

    def test_missing_metric_fails(self):
        req = QoSRequirement({"delay": 1.0})
        assert not req.satisfied_by(QoSVector({"loss": 0.0}))

    def test_extra_metrics_ignored(self):
        req = QoSRequirement({"delay": 1.0})
        assert req.satisfied_by(QoSVector({"delay": 0.5, "loss": 123.0}))

    def test_violation_sign(self):
        req = QoSRequirement({"delay": 1.0})
        assert req.violation(QoSVector({"delay": 0.5})) < 0
        assert req.violation(QoSVector({"delay": 1.0})) == 0.0
        assert req.violation(QoSVector({"delay": 2.0})) == pytest.approx(1.0)

    def test_utilisation_is_eq2_qos_term(self):
        req = QoSRequirement({"delay": 2.0, "loss": 0.5})
        qos = QoSVector({"delay": 1.0, "loss": 0.25})
        assert req.utilisation(qos) == pytest.approx(0.5 + 0.5)

    def test_zero_vector_matches_metrics(self):
        req = QoSRequirement({"delay": 1.0, "loss": 0.1})
        z = req.zero_vector()
        assert set(z.as_dict()) == {"delay", "loss"}

    def test_relax(self):
        req = QoSRequirement({"delay": 1.0}).relax(2.0)
        assert req.bounds["delay"] == 2.0
        with pytest.raises(ValueError):
            req.relax(0.0)

    def test_nonpositive_bound_rejected(self):
        with pytest.raises(ValueError):
            QoSRequirement({"delay": 0.0})

    def test_empty_requirement_always_satisfied(self):
        req = QoSRequirement({})
        assert req.satisfied_by(QoSVector({"delay": 1e9}))
        assert req.violation(QoSVector({})) == 0.0

    @given(st.floats(min_value=0.01, max_value=100), st.floats(min_value=0.0, max_value=200))
    @settings(max_examples=50, deadline=None)
    def test_satisfied_iff_violation_nonpositive(self, bound, value):
        req = QoSRequirement({"delay": bound})
        qos = QoSVector({"delay": value})
        assert req.satisfied_by(qos) == (req.violation(qos) <= 0)
