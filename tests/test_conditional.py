"""Tests for conditional branch semantics (§8 future-work extension)."""

import numpy as np
import pytest

from repro.core.conditional import (
    ConditionalAnnotation,
    ConditionalRouter,
    branch_probabilities,
    conditional_link_bandwidths,
    expected_qos,
    select_by_expected_qos,
)
from repro.core.function_graph import FunctionGraph
from repro.core.qos import QoSVector
from repro.core.resources import ResourceVector
from repro.core.selection import CandidateGraph
from repro.core.service_graph import ServiceGraph
from repro.discovery.metadata import ServiceMetadata
from repro.services.component import QualitySpec

from worlds import micro_overlay


def meta(cid, fn, peer, delay=0.01):
    return ServiceMetadata(
        component_id=cid,
        function=fn,
        peer=peer,
        qp=QoSVector({"delay": delay, "loss": 0.0}),
        resources=ResourceVector({"cpu": 10.0}),
        input_quality=QualitySpec(),
        output_quality=QualitySpec(),
    )


def diamond_graph(peers=(2, 3, 4, 5), delays=(0.01, 0.01, 0.01, 0.01)):
    fg = FunctionGraph.from_edges(
        ["fa", "fb", "fc", "fd"],
        [("fa", "fb"), ("fa", "fc"), ("fb", "fd"), ("fc", "fd")],
    )
    assignment = {
        "fa": meta(1, "fa", peers[0], delays[0]),
        "fb": meta(2, "fb", peers[1], delays[1]),
        "fc": meta(3, "fc", peers[2], delays[2]),
        "fd": meta(4, "fd", peers[3], delays[3]),
    }
    return ServiceGraph(fg, assignment, source_peer=0, dest_peer=7, base_bandwidth=1.0)


DIAMOND_FORK = ConditionalAnnotation({"fa": {"fb": 0.7, "fc": 0.3}})


class TestAnnotation:
    def test_probabilities_must_sum_to_one(self):
        with pytest.raises(ValueError):
            ConditionalAnnotation({"fa": {"fb": 0.7, "fc": 0.7}})

    def test_negative_probability_rejected(self):
        with pytest.raises(ValueError):
            ConditionalAnnotation({"fa": {"fb": 1.5, "fc": -0.5}})

    def test_validate_against_requires_full_successor_cover(self):
        graph = diamond_graph().pattern
        with pytest.raises(ValueError):
            ConditionalAnnotation({"fa": {"fb": 1.0}}).validate_against(graph)

    def test_validate_against_unknown_function(self):
        graph = diamond_graph().pattern
        with pytest.raises(ValueError):
            ConditionalAnnotation({"zz": {"fb": 1.0}}).validate_against(graph)

    def test_unannotated_fork_is_parallel(self):
        assert ConditionalAnnotation().probability("fa", "fb") == 1.0


class TestBranchProbabilities:
    def test_conditional_fork_splits(self):
        probs = branch_probabilities(diamond_graph().pattern, DIAMOND_FORK)
        assert probs[("fa", "fb", "fd")] == pytest.approx(0.7)
        assert probs[("fa", "fc", "fd")] == pytest.approx(0.3)
        assert sum(probs.values()) == pytest.approx(1.0)

    def test_parallel_default_all_ones(self):
        probs = branch_probabilities(diamond_graph().pattern, ConditionalAnnotation())
        assert all(p == 1.0 for p in probs.values())

    def test_linear_graph_single_branch(self):
        fg = FunctionGraph.linear(["a", "b"])
        probs = branch_probabilities(fg, ConditionalAnnotation())
        assert probs == {("a", "b"): 1.0}


class TestExpectedQoS:
    def test_expectation_between_branch_extremes(self):
        mov = micro_overlay(8)
        sg = diamond_graph(delays=(0.01, 0.5, 0.01, 0.01))  # fb slow
        worst = sg.end_to_end_qos(mov).get("delay")
        fast_branch = sg.branch_qos(mov, ("fa", "fc", "fd")).get("delay")
        expected = expected_qos(sg, mov, DIAMOND_FORK).get("delay")
        assert fast_branch < expected < worst

    def test_weights_follow_probabilities(self):
        mov = micro_overlay(8)
        sg = diamond_graph(delays=(0.0, 0.4, 0.0, 0.0))
        slow = sg.branch_qos(mov, ("fa", "fb", "fd")).get("delay")
        fast = sg.branch_qos(mov, ("fa", "fc", "fd")).get("delay")
        e = expected_qos(sg, mov, DIAMOND_FORK).get("delay")
        assert e == pytest.approx(0.7 * slow + 0.3 * fast)

    def test_zero_probability_branch_excluded(self):
        mov = micro_overlay(8)
        sg = diamond_graph(delays=(0.0, 9.9, 0.0, 0.0))  # fb catastrophic
        ann = ConditionalAnnotation({"fa": {"fb": 0.0, "fc": 1.0}})
        e = expected_qos(sg, mov, ann).get("delay")
        fast = sg.branch_qos(mov, ("fa", "fc", "fd")).get("delay")
        assert e == pytest.approx(fast)


class TestConditionalBandwidth:
    def test_expected_mode_scales_fork_links(self):
        sg = diamond_graph()
        links = {
            (l.from_fn, l.to_fn): l.bandwidth
            for l in conditional_link_bandwidths(sg, DIAMOND_FORK, mode="expected")
        }
        assert links[("fa", "fb")] == pytest.approx(0.7)
        assert links[("fa", "fc")] == pytest.approx(0.3)
        assert links[(None, "fa")] == pytest.approx(1.0)
        # the join sees all traffic again
        assert links[("fd", None)] == pytest.approx(1.0)

    def test_peak_mode_unscaled(self):
        sg = diamond_graph()
        links = {
            (l.from_fn, l.to_fn): l.bandwidth
            for l in conditional_link_bandwidths(sg, DIAMOND_FORK, mode="peak")
        }
        assert links[("fa", "fb")] == pytest.approx(1.0)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            conditional_link_bandwidths(diamond_graph(), DIAMOND_FORK, mode="average")


class TestSelectByExpectedQoS:
    def test_reranks_toward_probable_branch(self):
        mov = micro_overlay(8)
        # graph A: slow component on the *rare* branch (fc)
        a = diamond_graph(delays=(0.01, 0.01, 0.5, 0.01))
        # graph B: slow component on the *common* branch (fb)
        b_fg = diamond_graph(delays=(0.01, 0.5, 0.01, 0.01))
        cands = [
            CandidateGraph(graph=b_fg, qos=b_fg.end_to_end_qos(mov)),
            CandidateGraph(graph=a, qos=a.end_to_end_qos(mov)),
        ]
        # worst-branch QoS is (nearly) identical, but expectation prefers A
        best = select_by_expected_qos(cands, mov, DIAMOND_FORK)
        assert best.graph is a

    def test_empty_qualified_none(self):
        mov = micro_overlay(8)
        assert select_by_expected_qos([], mov, DIAMOND_FORK) is None


class TestConditionalRouter:
    def test_choice_frequencies_follow_probabilities(self):
        router = ConditionalRouter(DIAMOND_FORK, rng=np.random.default_rng(0))
        n = 2000
        for _ in range(n):
            router.choose("fa", ["fb", "fc"])
        share_fb = router.counts[("fa", "fb")] / n
        assert 0.65 < share_fb < 0.75

    def test_non_fork_rejected(self):
        router = ConditionalRouter(DIAMOND_FORK, rng=np.random.default_rng(0))
        with pytest.raises(KeyError):
            router.choose("fd", ["x"])

    def test_empty_successors_rejected(self):
        router = ConditionalRouter(DIAMOND_FORK, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            router.choose("fa", [])
