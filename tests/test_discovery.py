"""Unit tests for decentralized service discovery (registry over DHT)."""

import numpy as np
import pytest

from repro.core.qos import QoSVector
from repro.core.resources import ResourceVector
from repro.dht.pastry import PastryNetwork
from repro.discovery.metadata import ServiceMetadata
from repro.discovery.registry import ServiceRegistry
from repro.services.component import ComponentSpec


def make_spec(function: str, peer: int) -> ComponentSpec:
    return ComponentSpec.create(
        function=function,
        peer=peer,
        qp=QoSVector({"delay": 0.01, "loss": 0.0}),
        resources=ResourceVector({"cpu": 5.0, "memory": 16.0}),
    )


@pytest.fixture
def registry(overlay):
    dht = PastryNetwork(overlay, rng=np.random.default_rng(3))
    dht.build()
    return ServiceRegistry(dht)


class TestRegistration:
    def test_register_then_lookup(self, registry):
        spec = make_spec("transcode", peer=4)
        registry.register(spec)
        result = registry.lookup("transcode", origin_peer=10)
        assert len(result.components) == 1
        meta = result.components[0]
        assert meta.component_id == spec.component_id
        assert meta.peer == 4
        assert meta.function == "transcode"

    def test_duplicates_all_returned(self, registry):
        specs = [make_spec("filter", peer=p) for p in (1, 2, 3)]
        for s in specs:
            registry.register(s)
        result = registry.lookup("filter", origin_peer=0)
        assert {m.peer for m in result.components} == {1, 2, 3}

    def test_unknown_function_empty(self, registry):
        assert registry.lookup("nope", origin_peer=0).components == []

    def test_metadata_from_spec_carries_static_fields(self):
        spec = make_spec("scale", peer=9)
        meta = ServiceMetadata.from_spec(spec, registered_at=5.0)
        assert meta.qp == spec.qp
        assert meta.resources == spec.resources
        assert meta.registered_at == 5.0
        assert meta.describe()["function"] == "scale"

    def test_deregister_peer_removes_from_dht(self, registry):
        s1, s2 = make_spec("mix", peer=1), make_spec("mix", peer=2)
        registry.register(s1)
        registry.register(s2)
        removed = registry.deregister_peer(1)
        assert removed >= 1
        result = registry.lookup("mix", origin_peer=0)
        assert {m.peer for m in result.components} == {2}


class TestLiveness:
    def test_down_peer_filtered(self, registry):
        registry.register(make_spec("f", peer=1))
        registry.register(make_spec("f", peer=2))
        registry.peer_departed(1)
        result = registry.lookup("f", origin_peer=0)
        assert {m.peer for m in result.components} == {2}

    def test_include_down_override(self, registry):
        registry.register(make_spec("f", peer=1))
        registry.peer_departed(1)
        result = registry.lookup("f", origin_peer=0, include_down=True)
        assert {m.peer for m in result.components} == {1}

    def test_peer_return_restores_visibility(self, registry):
        registry.register(make_spec("f", peer=1))
        registry.peer_departed(1)
        registry.peer_arrived(1)
        assert len(registry.lookup("f", origin_peer=0).components) == 1

    def test_duplicates_view_respects_liveness(self, registry):
        registry.register(make_spec("g", peer=1))
        registry.register(make_spec("g", peer=2))
        registry.peer_departed(2)
        assert {m.peer for m in registry.duplicates("g")} == {1}
        assert {m.peer for m in registry.duplicates("g", include_down=True)} == {1, 2}


class TestCache:
    def test_cache_hit_within_ttl(self, overlay):
        dht = PastryNetwork(overlay, rng=np.random.default_rng(3))
        dht.build()
        registry = ServiceRegistry(dht, cache_ttl=10.0)
        registry.register(make_spec("f", peer=1))
        r1 = registry.lookup("f", origin_peer=0, now=0.0)
        assert not r1.from_cache
        r2 = registry.lookup("f", origin_peer=0, now=5.0)
        assert r2.from_cache
        assert r2.latency == 0.0

    def test_cache_expires(self, overlay):
        dht = PastryNetwork(overlay, rng=np.random.default_rng(3))
        dht.build()
        registry = ServiceRegistry(dht, cache_ttl=1.0)
        registry.register(make_spec("f", peer=1))
        registry.lookup("f", origin_peer=0, now=0.0)
        r = registry.lookup("f", origin_peer=0, now=2.0)
        assert not r.from_cache

    def test_cache_is_per_origin(self, overlay):
        dht = PastryNetwork(overlay, rng=np.random.default_rng(3))
        dht.build()
        registry = ServiceRegistry(dht, cache_ttl=10.0)
        registry.register(make_spec("f", peer=1))
        registry.lookup("f", origin_peer=0, now=0.0)
        r = registry.lookup("f", origin_peer=5, now=0.0)
        assert not r.from_cache


class TestViews:
    def test_functions_sorted(self, registry):
        for fn in ("zeta", "alpha"):
            registry.register(make_spec(fn, peer=0))
        assert registry.functions() == ["alpha", "zeta"]

    def test_registered_on(self, registry):
        spec = make_spec("f", peer=6)
        registry.register(spec)
        metas = registry.registered_on(6)
        assert len(metas) == 1 and metas[0].component_id == spec.component_id
        assert registry.registered_on(7) == []

    def test_lookup_rtt_doubles_latency(self, registry):
        registry.register(make_spec("f", peer=1))
        r = registry.lookup("f", origin_peer=30)
        assert r.rtt == pytest.approx(2 * r.latency)
