"""Behavioural tests for sessions and proactive failure recovery."""

import pytest

from repro.core.bcp import BCPConfig
from repro.core.function_graph import FunctionGraph
from repro.core.session import RecoveryConfig, SessionManager, SessionState
from repro.sim.engine import Simulator

from worlds import MicroWorld


def make_manager(world, config=None):
    sim = Simulator()
    return sim, SessionManager(sim, world.bcp, config=config)


def replicated_world(replicas=3, **kwargs):
    """fa/fb each on several distinct peers -> plenty of qualified graphs."""
    world = MicroWorld(n_peers=10, **kwargs)
    for i in range(replicas):
        world.place("fa", peer=2 + i)
        world.place("fb", peer=5 + i)
    return world


class TestEstablish:
    def test_establish_creates_active_session(self):
        world = replicated_world()
        sim, mgr = make_manager(world)
        req = world.request(FunctionGraph.linear(["fa", "fb"]), source=0, dest=9)
        session = mgr.establish(req)
        assert session is not None and session.active
        assert mgr.stats.sessions_established == 1
        assert session.tokens

    def test_establish_failure_counted(self):
        world = MicroWorld()
        sim, mgr = make_manager(world)
        req = world.request(FunctionGraph.linear(["missing"]))
        assert mgr.establish(req) is None
        assert mgr.stats.sessions_rejected == 1

    def test_backups_selected(self):
        world = replicated_world(replicas=4)
        sim, mgr = make_manager(world, RecoveryConfig(upper_bound=3.0))
        req = world.request(
            FunctionGraph.linear(["fa", "fb"]), source=0, dest=9,
            delay_bound=0.5, failure_req=0.02,
        )
        session = mgr.establish(req)
        assert session is not None
        assert len(session.backups) >= 1
        # backups never equal the current graph
        cur = session.current.signature()
        assert all(b.graph.signature() != cur for b in session.backups)

    def test_proactive_disabled_no_backups(self):
        world = replicated_world()
        sim, mgr = make_manager(world, RecoveryConfig(proactive=False))
        req = world.request(FunctionGraph.linear(["fa", "fb"]), source=0, dest=9)
        session = mgr.establish(req)
        assert session.backups == [] and session.target_backups == 0


class TestTeardown:
    def test_teardown_releases_resources(self):
        world = replicated_world()
        sim, mgr = make_manager(world)
        req = world.request(FunctionGraph.linear(["fa", "fb"]), source=0, dest=9)
        session = mgr.establish(req)
        assert world.pool.active_tokens()
        mgr.teardown(session.session_id)
        assert session.state is SessionState.CLOSED
        assert world.pool.active_tokens() == []

    def test_session_expires_after_duration(self):
        world = replicated_world()
        sim, mgr = make_manager(world)
        req = world.request(
            FunctionGraph.linear(["fa", "fb"]), source=0, dest=9, duration=30.0
        )
        session = mgr.establish(req)
        sim.run(until=29.0)
        assert session.active
        sim.run(until=31.0)
        assert session.state is SessionState.CLOSED

    def test_teardown_idempotent(self):
        world = replicated_world()
        sim, mgr = make_manager(world)
        req = world.request(FunctionGraph.linear(["fa", "fb"]), source=0, dest=9)
        session = mgr.establish(req)
        mgr.teardown(session.session_id)
        mgr.teardown(session.session_id)  # no raise
        mgr.teardown(9999)  # unknown id: no raise


class TestRecovery:
    def failing_setup(self, config=None, replicas=4):
        world = replicated_world(replicas=replicas)
        sim, mgr = make_manager(world, config or RecoveryConfig(upper_bound=3.0))
        req = world.request(
            FunctionGraph.linear(["fa", "fb"]), source=0, dest=9,
            delay_bound=0.5, failure_req=0.02, duration=1000.0,
        )
        session = mgr.establish(req)
        assert session is not None
        return world, sim, mgr, session

    def kill_current_peer(self, world, mgr, session):
        peer = session.current.component("fa").peer
        world.kill(peer)
        mgr.peer_departed(peer)
        return peer

    def test_proactive_switch_on_failure(self):
        world, sim, mgr, session = self.failing_setup()
        assert session.backups, "setup must produce backups"
        old_sig = session.current.signature()
        dead = self.kill_current_peer(world, mgr, session)
        sim.run(until=5.0)
        assert session.active
        assert session.current.signature() != old_sig
        assert not session.current.uses_peer(dead)
        assert mgr.stats.proactive_recoveries == 1
        assert mgr.stats.failures == 1

    def test_failed_graph_resources_released_after_switch(self):
        world, sim, mgr, session = self.failing_setup()
        old_peers = set(session.current.peers())
        self.kill_current_peer(world, mgr, session)
        sim.run(until=5.0)
        new_peers = set(session.current.peers())
        for p in old_peers - new_peers:
            assert world.pool.available(p).get("cpu") == pytest.approx(100.0)

    def test_reactive_recovery_when_no_backups(self):
        world, sim, mgr, session = self.failing_setup(
            config=RecoveryConfig(upper_bound=0.0)  # gamma = 0: no backups
        )
        assert session.backups == []
        self.kill_current_peer(world, mgr, session)
        sim.run(until=5.0)
        assert session.active
        assert mgr.stats.reactive_recoveries == 1

    def test_no_recovery_mode_session_fails(self):
        world, sim, mgr, session = self.failing_setup(
            config=RecoveryConfig(proactive=False, reactive=False)
        )
        self.kill_current_peer(world, mgr, session)
        sim.run(until=5.0)
        assert session.state is SessionState.FAILED
        assert mgr.stats.unrecovered_failures == 1
        assert world.pool.active_tokens() == []

    def test_endpoint_death_fails_session(self):
        world, sim, mgr, session = self.failing_setup()
        world.kill(0)  # the source peer
        mgr.peer_departed(0)
        sim.run(until=5.0)
        assert session.state is SessionState.FAILED

    def test_unrelated_peer_departure_ignored(self):
        world, sim, mgr, session = self.failing_setup()
        used = set(session.current.peers(include_endpoints=True))
        unused = next(p for p in world.overlay.peers() if p not in used)
        world.kill(unused)
        mgr.peer_departed(unused)
        sim.run(until=5.0)
        assert session.active
        assert mgr.stats.failures == 0

    def test_failure_listener_notified(self):
        world, sim, mgr, session = self.failing_setup()
        events = []
        mgr.on_failure(lambda t, recovered: events.append(recovered))
        self.kill_current_peer(world, mgr, session)
        sim.run(until=5.0)
        assert events == [True]

    def test_recovery_time_recorded(self):
        world, sim, mgr, session = self.failing_setup()
        self.kill_current_peer(world, mgr, session)
        sim.run(until=5.0)
        assert len(mgr.stats.recovery_times) == 1
        assert mgr.stats.recovery_times[0] >= mgr.config.detection_delay


class TestMaintenance:
    def test_dead_backup_pruned(self):
        world = replicated_world(replicas=4)
        sim, mgr = make_manager(
            world, RecoveryConfig(upper_bound=3.0, maintenance_interval=1.0)
        )
        req = world.request(
            FunctionGraph.linear(["fa", "fb"]), source=0, dest=9,
            delay_bound=0.5, failure_req=0.02, duration=1000.0,
        )
        session = mgr.establish(req)
        assert session.backups
        victim = session.backups[0].graph.peers()[0]
        world.kill(victim)
        sim.run(until=2.5)
        assert all(not b.graph.uses_peer(victim) for b in session.backups)

    def test_replenish_restores_target(self):
        world = replicated_world(replicas=5)
        sim, mgr = make_manager(
            world, RecoveryConfig(upper_bound=3.0, maintenance_interval=1.0)
        )
        req = world.request(
            FunctionGraph.linear(["fa", "fb"]), source=0, dest=9,
            delay_bound=0.5, failure_req=0.02, duration=1000.0,
        )
        session = mgr.establish(req)
        target = session.target_backups
        assert target >= 1 and session.spare_qualified
        victim = session.backups[0].graph.peers()[0]
        world.kill(victim)
        sim.run(until=2.5)
        # pruned backups are replaced from the spare qualified pool
        assert len(session.backups) >= min(target, 1)

    def test_maintenance_charges_ledger(self):
        world = replicated_world(replicas=4)
        sim, mgr = make_manager(
            world, RecoveryConfig(upper_bound=3.0, maintenance_interval=1.0)
        )
        req = world.request(
            FunctionGraph.linear(["fa", "fb"]), source=0, dest=9,
            delay_bound=0.5, failure_req=0.02, duration=1000.0,
        )
        session = mgr.establish(req)
        assert session.backups
        before = mgr.ledger.count.get("maintenance_probe", 0)
        sim.run(until=5.5)
        assert mgr.ledger.count.get("maintenance_probe", 0) > before

    def test_maintenance_stops_with_session(self):
        world = replicated_world(replicas=4)
        sim, mgr = make_manager(
            world, RecoveryConfig(upper_bound=3.0, maintenance_interval=1.0)
        )
        req = world.request(
            FunctionGraph.linear(["fa", "fb"]), source=0, dest=9,
            delay_bound=0.5, failure_req=0.02, duration=3.0,
        )
        session = mgr.establish(req)
        sim.run(until=4.0)
        count_at_close = mgr.ledger.count.get("maintenance_probe", 0)
        sim.run(until=20.0)
        assert mgr.ledger.count.get("maintenance_probe", 0) == count_at_close


class TestHeartbeatDetection:
    def test_heartbeat_interval_validated(self):
        with pytest.raises(ValueError):
            RecoveryConfig(heartbeat_interval=0.0)

    def test_heartbeat_traffic_charged(self):
        world = replicated_world(replicas=3)
        sim, mgr = make_manager(
            world, RecoveryConfig(upper_bound=2.0, heartbeat_interval=1.0)
        )
        req = world.request(
            FunctionGraph.linear(["fa", "fb"]), source=0, dest=9, duration=100.0
        )
        session = mgr.establish(req)
        assert session is not None
        sim.run(until=5.5)
        assert mgr.ledger.count.get("heartbeat", 0) >= 5 * len(session.current.peers())

    def test_heartbeat_stops_with_session(self):
        world = replicated_world(replicas=3)
        sim, mgr = make_manager(
            world, RecoveryConfig(upper_bound=2.0, heartbeat_interval=1.0)
        )
        req = world.request(
            FunctionGraph.linear(["fa", "fb"]), source=0, dest=9, duration=3.0
        )
        mgr.establish(req)
        sim.run(until=4.0)
        at_close = mgr.ledger.count.get("heartbeat", 0)
        sim.run(until=20.0)
        assert mgr.ledger.count.get("heartbeat", 0) == at_close

    def test_detection_delay_includes_heartbeat_residual(self):
        world = replicated_world(replicas=4)
        sim, mgr = make_manager(
            world,
            RecoveryConfig(
                upper_bound=3.0, heartbeat_interval=4.0, detection_delay=0.5
            ),
        )
        req = world.request(
            FunctionGraph.linear(["fa", "fb"]), source=0, dest=9,
            delay_bound=0.5, failure_req=0.02, duration=1000.0,
        )
        session = mgr.establish(req)
        assert session is not None and session.backups
        peer = session.current.component("fa").peer
        world.kill(peer)
        mgr.peer_departed(peer)
        sim.run(until=20.0)
        assert session.active
        assert len(mgr.stats.recovery_times) == 1
        rt = mgr.stats.recovery_times[0]
        # residual in [0, 4) + 0.5 margin + switch ack
        assert 0.5 <= rt < 4.0 + 0.5 + 1.0

    def test_oracle_mode_fixed_delay(self):
        world = replicated_world(replicas=4)
        sim, mgr = make_manager(
            world, RecoveryConfig(upper_bound=3.0, detection_delay=0.25)
        )
        req = world.request(
            FunctionGraph.linear(["fa", "fb"]), source=0, dest=9,
            delay_bound=0.5, failure_req=0.02, duration=1000.0,
        )
        session = mgr.establish(req)
        peer = session.current.component("fa").peer
        world.kill(peer)
        mgr.peer_departed(peer)
        sim.run(until=20.0)
        assert mgr.stats.recovery_times
        assert mgr.stats.recovery_times[0] >= 0.25
