"""Documentation guards: the README's code actually runs.

Doc rot is the usual failure mode of example-rich READMEs; this test
extracts the quickstart code block and executes it verbatim.
"""

import pathlib
import re

import pytest

README = pathlib.Path(__file__).parent.parent / "README.md"


def python_blocks(text: str):
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadme:
    def test_readme_exists_with_sections(self):
        text = README.read_text()
        for heading in ("## Install", "## Quickstart", "## Tests and benchmarks",
                        "## Architecture", "## Scale"):
            assert heading in text

    @pytest.mark.slow
    def test_quickstart_block_executes(self):
        blocks = python_blocks(README.read_text())
        assert blocks, "README must contain a python quickstart block"
        namespace = {}
        exec(compile(blocks[0], "README.quickstart", "exec"), namespace)  # noqa: S102
        # the block prints a composed graph and establishes a session
        assert "result" in namespace and namespace["result"] is not None
        assert "session" in namespace

    def test_cited_paths_exist(self):
        text = README.read_text()
        root = README.parent
        for rel in ("DESIGN.md", "EXPERIMENTS.md", "examples/quickstart.py",
                    "examples/video_streaming.py", "examples/secure_composition.py",
                    "scripts/run_all_experiments.py"):
            assert (root / rel).exists(), f"README references missing {rel}"
            assert rel.split("/")[-1] in text


class TestDesignDoc:
    def test_per_experiment_index_covers_all_figures(self):
        text = (README.parent / "DESIGN.md").read_text()
        for fig in ("Fig. 8", "Fig. 9", "Fig. 10", "Fig. 11"):
            assert fig in text

    def test_experiments_doc_reports_each_figure(self):
        text = (README.parent / "EXPERIMENTS.md").read_text()
        for section in ("Figure 8", "Figure 9", "Figure 10", "Figure 11",
                        "overhead", "Backup-count"):
            assert section in text
