"""Unit + property tests for the power-law Internet topology generator."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.inet import (
    TopologyError,
    generate_ip_network,
    power_law_degree_sequence,
)


class TestDegreeSequence:
    def test_length_and_bounds(self):
        d = power_law_degree_sequence(500, rng=np.random.default_rng(0))
        assert len(d) == 500
        assert d.min() >= 1

    def test_sum_is_even(self):
        for seed in range(10):
            d = power_law_degree_sequence(101, rng=np.random.default_rng(seed))
            assert d.sum() % 2 == 0

    def test_heavy_tail_present(self):
        d = power_law_degree_sequence(2000, gamma=2.2, rng=np.random.default_rng(1))
        # a power law should produce a hub well above the median
        assert d.max() >= 5 * np.median(d)

    def test_higher_gamma_thinner_tail(self):
        rng1, rng2 = np.random.default_rng(2), np.random.default_rng(2)
        flat = power_law_degree_sequence(2000, gamma=3.5, rng=rng1)
        heavy = power_law_degree_sequence(2000, gamma=2.0, rng=rng2)
        assert heavy.mean() > flat.mean()

    def test_max_degree_respected(self):
        d = power_law_degree_sequence(300, max_degree=5, rng=np.random.default_rng(3))
        # the even-sum fixup may add one to a single node
        assert d.max() <= 6

    def test_bad_params_rejected(self):
        with pytest.raises(TopologyError):
            power_law_degree_sequence(0)
        with pytest.raises(TopologyError):
            power_law_degree_sequence(10, gamma=1.0)

    @given(st.integers(min_value=2, max_value=300), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=20, deadline=None)
    def test_always_graphical_sum(self, n, seed):
        d = power_law_degree_sequence(n, rng=np.random.default_rng(seed))
        assert d.sum() % 2 == 0 and len(d) == n


class TestGenerateIPNetwork:
    def test_connected_across_seeds(self):
        for seed in range(8):
            g = generate_ip_network(150, rng=np.random.default_rng(seed))
            assert nx.is_connected(g)

    def test_node_count(self):
        g = generate_ip_network(77, rng=np.random.default_rng(0))
        assert g.number_of_nodes() == 77

    def test_edge_attributes_present_and_sane(self):
        g = generate_ip_network(100, rng=np.random.default_rng(0))
        for _, _, d in g.edges(data=True):
            assert d["delay"] > 0
            assert 10.0 <= d["bandwidth"] <= 1000.0

    def test_positions_in_unit_square(self):
        g = generate_ip_network(50, rng=np.random.default_rng(0))
        for _, d in g.nodes(data=True):
            x, y = d["pos"]
            assert 0.0 <= x <= 1.0 and 0.0 <= y <= 1.0

    def test_delay_reflects_distance(self):
        g = generate_ip_network(100, rng=np.random.default_rng(0), hop_delay=0.0)
        import math

        for u, v, d in g.edges(data=True):
            xu, yu = g.nodes[u]["pos"]
            xv, yv = g.nodes[v]["pos"]
            dist = math.hypot(xu - xv, yu - yv)
            assert d["delay"] == pytest.approx(0.030 * dist, abs=1e-12)

    def test_single_node_graph(self):
        g = generate_ip_network(1, rng=np.random.default_rng(0))
        assert g.number_of_nodes() == 1 and g.number_of_edges() == 0

    def test_degree_distribution_is_skewed(self):
        g = generate_ip_network(1000, rng=np.random.default_rng(4))
        degrees = np.array([d for _, d in g.degree()])
        assert degrees.max() >= 4 * np.median(degrees)

    def test_bad_bandwidth_range_rejected(self):
        with pytest.raises(TopologyError):
            generate_ip_network(20, bandwidth_range=(0.0, 10.0), rng=np.random.default_rng(0))

    def test_deterministic_given_seed(self):
        g1 = generate_ip_network(80, rng=np.random.default_rng(9))
        g2 = generate_ip_network(80, rng=np.random.default_rng(9))
        assert sorted(g1.edges) == sorted(g2.edges)
